package synth

import (
	"fmt"
	"io"
	"math"

	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// JobStream lazily generates a profile's trace one job at a time,
// implementing trace.Stream. It is the generator behind Generate: the same
// arrival process, user population, shadow schedulers, and RNG draw
// sequence run incrementally, so the emitted jobs are bit-identical to the
// materialized trace — Generate is literally a drain of this stream.
//
// Memory stays O(shadow backlog): a generated job is buffered only until
// its shadow scheduler assigns it a start time (that is when Wait becomes
// known), then emitted in generation order, which is submit order — the
// arrival clock is monotone and submit quantization is order-preserving.
//
// The stream holds the *Profile it was created from (including the
// HourlyWeights normalization Generate applies); the profile must not be
// modified until the stream is drained.
type JobStream struct {
	p        *Profile
	rng      *dist.RNG
	users    []*user
	userZipf *dist.Zipf
	sizeCat  *dist.Categorical
	shadows  []*shadow
	vcCaps   []int
	nVC      int

	shape       float64
	gammaFactor float64
	wsum        float64
	horizon     float64

	now float64
	id  int

	starts  map[int]float64
	onStart func(id int, st float64)

	// buf[head:] holds generated jobs whose shadow start is not yet known
	// (plus, at the front, any that just became emittable).
	buf  []trace.Job
	head int

	done bool // generator exhausted and shadows flushed
	err  error
}

// Stream returns a JobStream over the profile for the given seed. The
// sequence of jobs (and the terminal error, if any) is exactly what
// Generate(seed) would produce.
func (p *Profile) Stream(seed uint64) (*JobStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := dist.NewRNG(seed)
	users := p.makeUsers(rng)

	nVC := p.Sys.VirtualClusters
	if nVC < 1 {
		nVC = 1
	}
	shadows := make([]*shadow, nVC)
	vcCaps := make([]int, nVC)
	base := p.Sys.TotalCores / nVC
	rem := p.Sys.TotalCores % nVC
	for i := range shadows {
		vcCaps[i] = base
		if i < rem {
			vcCaps[i]++
		}
		shadows[i] = newShadow(vcCaps[i])
	}

	shape := 1.0
	if p.Burstiness > 0 {
		shape = 1 / p.Burstiness
	}
	wsum := 0.0
	for _, w := range p.HourlyWeights {
		wsum += w
	}
	if wsum == 0 {
		wsum = 24
		for i := range p.HourlyWeights {
			p.HourlyWeights[i] = 1
		}
	}

	s := &JobStream{
		p:           p,
		rng:         rng,
		users:       users,
		userZipf:    dist.NewZipf(len(users), p.UserZipfS),
		sizeCat:     dist.NewCategorical(p.SizeWeights),
		shadows:     shadows,
		vcCaps:      vcCaps,
		nVC:         nVC,
		shape:       shape,
		gammaFactor: math.Gamma(1 + 1/shape),
		wsum:        wsum,
		horizon:     p.Days * 86400,
		starts:      map[int]float64{},
	}
	s.onStart = func(id int, st float64) { s.starts[id] = st }
	return s, nil
}

// System returns the profile's system description.
func (s *JobStream) System() trace.System { return s.p.Sys }

// Next returns the next job in submit order, io.EOF at the end. Errors
// (including EOF) are sticky.
func (s *JobStream) Next() (trace.Job, error) {
	if s.err != nil {
		return trace.Job{}, s.err
	}
	for {
		// Emit the buffer front once its shadow start is known.
		if s.head < len(s.buf) {
			if st, ok := s.starts[s.buf[s.head].ID]; ok {
				j := s.buf[s.head]
				delete(s.starts, j.ID)
				s.head++
				if s.head > 64 && s.head*2 > len(s.buf) {
					n := copy(s.buf, s.buf[s.head:])
					s.buf = s.buf[:n]
					s.head = 0
				}
				j.Wait = st - j.Submit
				if j.Wait < 0 {
					j.Wait = 0
				}
				return j, nil
			}
		}
		if s.done {
			if s.head < len(s.buf) {
				s.err = fmt.Errorf("synth: job %d never started in shadow scheduler", s.buf[s.head].ID)
			} else {
				s.err = io.EOF
			}
			return trace.Job{}, s.err
		}
		s.step()
	}
}

// step advances the generator: it either produces one job into the buffer
// (skipping dead hours along the way) or, once the arrival clock reaches
// the horizon, flushes the shadow schedulers so every buffered job's start
// becomes known. The body mirrors the original Generate loop statement for
// statement — the RNG draw sequence is what makes the stream bit-identical.
func (s *JobStream) step() {
	p := s.p
	for s.now < s.horizon {
		hour := (int(s.now/3600) + p.Sys.StartHour) % 24
		rate := p.JobsPerDay / 86400 * (p.HourlyWeights[hour] * 24 / s.wsum)
		if rate <= 0 {
			s.now += 3600
			continue
		}
		meanGap := 1 / rate
		lambda := meanGap / s.gammaFactor
		gap := dist.Weibull{K: s.shape, Lambda: lambda}.Sample(s.rng)
		if gap > 6*3600 {
			gap = 6 * 3600 // keep the process moving through dead hours
		}
		s.now += gap
		if s.now >= s.horizon {
			break
		}

		sub := s.now
		if p.SubmitQuantum > 0 {
			sub = math.Floor(sub/p.SubmitQuantum) * p.SubmitQuantum
		}
		u := s.users[s.userZipf.SampleRank(s.rng)-1]
		sh := s.shadows[u.vc%s.nVC]
		sh.advance(sub, s.onStart)
		qFrac := float64(sh.queueLen()) / p.QueueScale
		if qFrac > 1 {
			qFrac = 1
		}

		j := p.makeJob(s.rng, u, s.sizeCat, qFrac, s.vcCaps[u.vc%s.nVC])
		j.ID = s.id
		j.Submit = sub
		if s.nVC > 1 {
			j.VC = u.vc % s.nVC
		} else {
			j.VC = -1
		}
		// DL schedulers do not drain for big jobs; only HPC/hybrid
		// capability jobs get priority-with-drain semantics.
		large := p.Sys.Kind != trace.DL &&
			sizeCategory3(p.Sys.Kind, j.Procs, p.Sys.TotalCores) == 2
		sh.submit(shadowJob{id: s.id, procs: j.Procs, run: j.Run, submit: sub, large: large}, s.onStart)
		s.buf = append(s.buf, j)
		s.id++
		return
	}
	for _, sh := range s.shadows {
		sh.flush(s.onStart)
	}
	s.done = true
}

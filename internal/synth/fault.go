package synth

import (
	"math"

	"crosssched/internal/dist"
	"crosssched/internal/fault"
	"crosssched/internal/trace"
)

// Fault-model derivation constants: the reference outage process is one
// 10%-capacity outage per partition every refMTBF seconds repaired in
// refMTTR, scaled so systems whose calibrated status mixture kills more
// work see proportionally more capacity faults.
const (
	refMTBF     = 4 * 86400
	refMTTR     = 2 * 3600
	refKillMass = 0.08
	minMTBF     = 86400
	maxMTBF     = 14 * 86400
)

// FaultModel derives a fault-injection scenario from the profile's
// calibrated status mixtures, so degraded-capacity experiments stress each
// system at the failure intensity the paper reports for it rather than at
// an arbitrary rate.
//
// The derivation Monte-Carlo-samples the profile's template distribution
// (runtime medians, tail weight, size-runtime correlation, size boosts) and
// takes the expected per-job Failed probability as the per-attempt
// interrupt probability, and the expected Killed probability as the driver
// of the capacity-outage rate: MTBF = refMTBF * refKillMass / E[kill],
// clamped to [1, 14] days, with a 2-hour MTTR and 10% capacity per outage.
// DL systems recover interrupted jobs by checkpoint/restart (training jobs
// checkpoint routinely); HPC and hybrid systems requeue from zero. The
// returned config is a pure function of (profile, seed).
func (p *Profile) FaultModel(seed uint64) *fault.Config {
	r := dist.NewRNG(seed)
	sizeCat := dist.NewCategorical(p.SizeWeights)
	const samples = 2048
	var efail, ekill float64
	for i := 0; i < samples; i++ {
		procs := p.SizeChoices[sizeCat.SampleIndex(r)]
		med := p.RuntimeMedian.Sample(r)
		if p.RuntimeTailWeight > 0 && p.RuntimeTail != nil && r.Float64() < p.RuntimeTailWeight {
			med = p.RuntimeTail.Sample(r)
		}
		if p.SizeRuntimeCorr != 0 && p.RefProcs > 0 {
			med *= math.Pow(float64(procs)/float64(p.RefProcs), p.SizeRuntimeCorr)
		}
		if med < 1 {
			med = 1
		}
		cat := lengthCategory(med)
		fail := p.FailByLength[cat]
		kill := p.KillByLength[cat]
		if p.SizeFailBoost != [3]float64{} {
			b := p.SizeFailBoost[sizeCategory3(p.Sys.Kind, procs, p.Sys.TotalCores)]
			fail *= b
			kill *= b
		}
		if fail+kill > 0.95 {
			scale := 0.95 / (fail + kill)
			fail *= scale
			kill *= scale
		}
		efail += fail
		ekill += kill
	}
	efail /= samples
	ekill /= samples

	mtbf := refMTBF * refKillMass / max(ekill, 0.005)
	if mtbf < minMTBF {
		mtbf = minMTBF
	} else if mtbf > maxMTBF {
		mtbf = maxMTBF
	}
	cfg := &fault.Config{
		Seed:          seed,
		MTBF:          mtbf,
		MTTR:          refMTTR,
		OutageFrac:    0.1,
		InterruptProb: min(efail, 0.5),
		Recovery:      fault.RecoveryRequeue,
		RetryCap:      2,
	}
	if p.Sys.Kind == trace.DL {
		cfg.Recovery = fault.RecoveryCheckpoint
		cfg.CheckpointInterval = 1800
	}
	return cfg
}

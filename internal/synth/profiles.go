package synth

import (
	"fmt"

	"crosssched/internal/dist"
	"crosssched/internal/trace"
)

// Diurnal weight templates. All are relative rates by local hour; the
// generator normalizes them.
var (
	// peaked: strong 8am-5pm business-hours cycle (Blue Waters, Helios;
	// max/min about 10x, per Figure 1(b) bottom).
	peakedHours = [24]float64{
		0.25, 0.2, 0.18, 0.18, 0.2, 0.3, 0.5, 0.9, 1.4, 1.7, 1.9, 2.0,
		1.9, 2.0, 1.95, 1.85, 1.6, 1.3, 1.0, 0.8, 0.6, 0.45, 0.35, 0.3,
	}
	// flatDip: Philly's flat profile with a mild dip in "peak hours"
	// (max/min about 2.5x).
	flatDipHours = [24]float64{
		1.2, 1.15, 1.1, 1.0, 0.95, 0.9, 0.9, 0.85, 0.8, 0.7, 0.6, 0.55,
		0.55, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.3, 1.25,
	}
	// afternoon: Mira/Theta's mild lift after 12pm.
	afternoonHours = [24]float64{
		0.9, 0.85, 0.82, 0.8, 0.8, 0.82, 0.85, 0.9, 0.95, 1.0, 1.05, 1.1,
		1.18, 1.22, 1.22, 1.2, 1.15, 1.1, 1.05, 1.0, 0.98, 0.95, 0.92, 0.9,
	}
)

// Mira returns the profile calibrated to ALCF Mira: a 49,152-node,
// 786,432-core BlueGene/Q running capability-scale jobs. Median runtime
// ~1.5h, stable runtimes, ~100s-scale arrival gaps, >50% of jobs above
// 1,000 cores, high utilization, and near-certain walltime kills for
// day-plus jobs.
func Mira(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "Mira", Kind: trace.HPC,
			TotalCores: 786432, CoresPerNode: 16, StartHour: 8,
		},
		Days: days, JobsPerDay: 160, Burstiness: 1.25,
		HourlyWeights: afternoonHours,
		Users:         80, UserZipfS: 1.05,
		TemplatesPerUser: 24, TemplateZipfS: 1.9,
		// Node counts x 16 cores; Mira's minimum partition is 512 nodes.
		SizeChoices: scale(16, 512, 1024, 2048, 4096, 8192, 12288, 16384, 24576, 49152),
		SizeWeights: []float64{0.52, 0.22, 0.09, 0.05, 0.055, 0.015, 0.015, 0.008, 0.004},
		RefProcs:    16384, SizeRuntimeCorr: 0.55,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(5400, 0.85), Lo: 60, Hi: 2.5e5},
		RuntimeTailWeight:  0.03,
		RuntimeTail:        dist.Clamped{S: dist.LogNormalFromMedian(1.4e5, 0.3), Lo: 9e4, Hi: 2.4e5},
		IntraTemplateSigma: 0.05,
		WalltimeFactorLo:   1.05, WalltimeFactorHi: 1.7,
		FailByLength:     [3]float64{0.13, 0.06, 0.01},
		KillByLength:     [3]float64{0.10, 0.28, 0.97},
		UserFailSigma:    0.30,
		WalltimeKillFrac: 0.6,
		SizeAdapt:        0.5, RuntimeAdapt: 0,
		QueueScale: 60,
	}
}

// Theta returns the profile calibrated to ALCF Theta: 4,392 nodes x 64
// cores. Similar geometry to Mira at smaller scale, with small jobs taking
// only ~16% of core hours.
func Theta(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "Theta", Kind: trace.HPC,
			TotalCores: 281088, CoresPerNode: 64, StartHour: 8,
		},
		Days: days, JobsPerDay: 290, Burstiness: 1.25,
		HourlyWeights: afternoonHours,
		Users:         100, UserZipfS: 1.05,
		TemplatesPerUser: 24, TemplateZipfS: 1.9,
		SizeChoices: scale(64, 128, 256, 512, 1024, 2048, 4096),
		SizeWeights: []float64{0.56, 0.18, 0.12, 0.116, 0.02, 0.004},
		RefProcs:    64 * 1024, SizeRuntimeCorr: 0.85,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(3600, 0.9), Lo: 60, Hi: 2.5e5},
		RuntimeTailWeight:  0.02,
		RuntimeTail:        dist.Clamped{S: dist.LogNormalFromMedian(1.3e5, 0.3), Lo: 9e4, Hi: 2.4e5},
		IntraTemplateSigma: 0.05,
		WalltimeFactorLo:   1.05, WalltimeFactorHi: 1.7,
		FailByLength:     [3]float64{0.13, 0.07, 0.02},
		KillByLength:     [3]float64{0.12, 0.30, 0.90},
		UserFailSigma:    0.30,
		WalltimeKillFrac: 0.55,
		SizeAdapt:        0.4, RuntimeAdapt: 0,
		QueueScale: 80,
	}
}

// BlueWaters returns the profile calibrated to NCSA Blue Waters: the hybrid
// 396,000-core system. Median job 32 nodes, median runtime ~1.5h with wide
// dispersion, ~10s arrival gaps, small jobs dominating core hours (>85%),
// and the longest waits of the five systems.
func BlueWaters(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "BlueWaters", Kind: trace.Hybrid,
			TotalCores: 396000, CoresPerNode: 32, StartHour: 8,
		},
		Days: days, JobsPerDay: 2700, Burstiness: 2.2,
		HourlyWeights: peakedHours,
		Users:         300, UserZipfS: 1.05,
		TemplatesPerUser: 28, TemplateZipfS: 1.8,
		// Node counts x 32 cores.
		SizeChoices: scale(32, 1, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
		SizeWeights: []float64{0.10, 0.10, 0.15, 0.15, 0.245, 0.12, 0.08, 0.03, 0.014, 0.006, 0.0025, 0.0008, 0.0004},
		RefProcs:    32 * 32, SizeRuntimeCorr: 0.10,
		// Hybrid runtime mixture: short DL-ish jobs plus long simulations.
		RuntimeMedian: dist.Clamped{S: mixture(
			0.30, dist.LogNormalFromMedian(400, 1.3),
			0.70, dist.LogNormalFromMedian(9000, 1.1),
		), Lo: 5, Hi: 6e5},
		IntraTemplateSigma: 0.06,
		WalltimeFactorLo:   1.05, WalltimeFactorHi: 1.8,
		FailByLength:     [3]float64{0.10, 0.05, 0.02},
		KillByLength:     [3]float64{0.12, 0.33, 0.80},
		UserFailSigma:    0.35,
		WalltimeKillFrac: 0.5,
		SizeAdapt:        0.3, RuntimeAdapt: 0,
		QueueScale: 1200,
	}
}

// Philly returns the profile calibrated to Microsoft Philly: 2,490 GPUs in
// 14 isolated virtual clusters. ~80% single-GPU jobs, median runtime ~12
// minutes with week-long training tails, bursty ~8s arrivals, a flat
// diurnal cycle, the highest failure rate (~40%), low utilization (~0.43)
// from VC fragmentation, and long waits despite idle GPUs.
func Philly(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "Philly", Kind: trace.DL,
			TotalCores: 2490, VirtualClusters: 14, StartHour: 0,
		},
		Days: days, JobsPerDay: 5000, Burstiness: 1.9,
		HourlyWeights: flatDipHours,
		Users:         200, UserZipfS: 1.05,
		TemplatesPerUser: 30, TemplateZipfS: 1.55,
		SizeChoices: []int{1, 2, 4, 8, 16, 32, 64, 128},
		SizeWeights: []float64{0.80, 0.05, 0.05, 0.05, 0.03, 0.015, 0.004, 0.001},
		RefProcs:    8, SizeRuntimeCorr: 0.3,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(4200, 1.7), Lo: 1, Hi: 5e6},
		RuntimeTailWeight:  0.08,
		RuntimeTail:        dist.Clamped{S: dist.Pareto{Xm: 86400, Alpha: 1.3}, Lo: 86400, Hi: 5e6},
		IntraTemplateSigma: 0.06,
		FailByLength:       [3]float64{0.25, 0.15, 0.05},
		KillByLength:       [3]float64{0.12, 0.33, 0.80},
		SizeFailBoost:      [3]float64{1.0, 1.35, 1.9},
		UserFailSigma:      0.40,
		SizeAdapt:          0.9, RuntimeAdapt: 0.8,
		QueueScale: 300,
	}
}

// Helios returns the profile calibrated to SenseTime Helios: 6,416 GPUs,
// jobs up to 2,048 GPUs, a 90-second median runtime with month-long
// training tails, ~5s arrival gaps with a strong 10x diurnal cycle, and
// minimal waits (80% under 10s).
func Helios(days float64) *Profile {
	return &Profile{
		Sys: trace.System{
			Name: "Helios", Kind: trace.DL,
			TotalCores: 6416, StartHour: 8,
		},
		Days: days, JobsPerDay: 6800, Burstiness: 2.2,
		HourlyWeights: peakedHours,
		Users:         400, UserZipfS: 1.05,
		TemplatesPerUser: 30, TemplateZipfS: 1.55,
		SizeChoices: []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048},
		SizeWeights: []float64{0.78, 0.06, 0.05, 0.06, 0.02, 0.015, 0.01, 0.004, 0.002, 0.0015, 0.0008, 0.0004},
		RefProcs:    8, SizeRuntimeCorr: 0.35,
		RuntimeMedian:      dist.Clamped{S: dist.LogNormalFromMedian(450, 2.1), Lo: 1, Hi: 5e6},
		RuntimeTailWeight:  0.05,
		RuntimeTail:        dist.Clamped{S: dist.Pareto{Xm: 172800, Alpha: 1.4}, Lo: 172800, Hi: 5e6},
		IntraTemplateSigma: 0.06,
		FailByLength:       [3]float64{0.18, 0.12, 0.04},
		KillByLength:       [3]float64{0.12, 0.33, 0.85},
		SizeFailBoost:      [3]float64{1.0, 1.3, 1.8},
		UserFailSigma:      0.40,
		SizeAdapt:          0.9, RuntimeAdapt: 0.9,
		QueueScale: 8,
	}
}

// Profiles returns all five built-in system profiles keyed by name.
func Profiles(days float64) map[string]*Profile {
	return map[string]*Profile{
		"Mira":       Mira(days),
		"Theta":      Theta(days),
		"BlueWaters": BlueWaters(days),
		"Philly":     Philly(days),
		"Helios":     Helios(days),
	}
}

// ByName returns one built-in profile or an error listing the valid names.
func ByName(name string, days float64) (*Profile, error) {
	p, ok := Profiles(days)[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown profile %q (want Mira, Theta, BlueWaters, Philly, or Helios)", name)
	}
	return p, nil
}

// SystemNames lists the built-in systems in the paper's presentation order.
var SystemNames = []string{"BlueWaters", "Mira", "Theta", "Philly", "Helios"}

// scale multiplies each node count by coresPerNode.
func scale(coresPerNode int, nodes ...int) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n * coresPerNode
	}
	return out
}

// mixture builds a two-component sampler with the given weights.
func mixture(w1 float64, s1 dist.Sampler, w2 float64, s2 dist.Sampler) dist.Sampler {
	return dist.NewMixture([]float64{w1, w2}, []dist.Sampler{s1, s2})
}

package synth_test

import (
	"fmt"

	"crosssched/internal/synth"
)

// ExampleByName generates a calibrated workload for a named system.
func ExampleByName() {
	p, err := synth.ByName("Mira", 2)
	if err != nil {
		panic(err)
	}
	tr, err := p.Generate(1)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.System.Name, tr.System.TotalCores, "cores")
	fmt.Println("jobs generated:", tr.Len() > 100)
	fmt.Println("walltimes present:", tr.Jobs[0].Walltime > 0)
	// Output:
	// Mira 786432 cores
	// jobs generated: true
	// walltimes present: true
}

// ExampleFromTrace fits a generator profile to an observed trace and
// regenerates a matched synthetic workload.
func ExampleFromTrace() {
	orig, err := synth.Helios(2).Generate(3)
	if err != nil {
		panic(err)
	}
	fitted, err := synth.FromTrace(orig)
	if err != nil {
		panic(err)
	}
	regen, err := fitted.Generate(99)
	if err != nil {
		panic(err)
	}
	ratio := float64(regen.Len()) / float64(orig.Len())
	fmt.Println("count within 2x:", ratio > 0.5 && ratio < 2)
	// Output:
	// count within 2x: true
}

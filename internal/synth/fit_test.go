package synth

import (
	"math"
	"testing"

	"crosssched/internal/dist"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

func TestFromTraceRejectsTiny(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 4})
	if _, err := FromTrace(tr); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

// TestFromTraceRoundTrip fits a profile to a generated Philly trace,
// regenerates from the fit, and checks the headline statistics agree
// within loose bands — the fidelity a "model my trace" user needs.
func TestFromTraceRoundTrip(t *testing.T) {
	orig, err := Philly(6).Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := FromTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	regen, err := fitted.Generate(99)
	if err != nil {
		t.Fatal(err)
	}

	// job count within 2x
	ratio := float64(regen.Len()) / float64(orig.Len())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("job count ratio %v (orig %d, regen %d)", ratio, orig.Len(), regen.Len())
	}
	// median runtime within ~4x (log-space fit over a heavy mixture)
	mo, mr := stats.Median(orig.Runtimes()), stats.Median(regen.Runtimes())
	if r := mr / mo; r < 0.25 || r > 4 {
		t.Fatalf("median runtime ratio %v (orig %v, regen %v)", r, mo, mr)
	}
	// arrival median within 3x
	io, ir := stats.Median(orig.ArrivalIntervals()), stats.Median(regen.ArrivalIntervals())
	if r := ir / io; r < 1.0/3 || r > 3 {
		t.Fatalf("median interval ratio %v (orig %v, regen %v)", r, io, ir)
	}
	// single-GPU dominance preserved
	frac1 := func(tr *trace.Trace) float64 {
		n := 0
		for _, j := range tr.Jobs {
			if j.Procs == 1 {
				n++
			}
		}
		return float64(n) / float64(tr.Len())
	}
	if math.Abs(frac1(orig)-frac1(regen)) > 0.15 {
		t.Fatalf("single-GPU fraction drifted: %v vs %v", frac1(orig), frac1(regen))
	}
	// failure rate within 15 points
	notPassed := func(tr *trace.Trace) float64 {
		n := 0
		for _, j := range tr.Jobs {
			if j.Status != trace.Passed {
				n++
			}
		}
		return float64(n) / float64(tr.Len())
	}
	if math.Abs(notPassed(orig)-notPassed(regen)) > 0.15 {
		t.Fatalf("failure rate drifted: %v vs %v", notPassed(orig), notPassed(regen))
	}
	// distributional fidelity: KS distance of log runtimes bounded
	logRT := func(tr *trace.Trace) []float64 {
		out := make([]float64, tr.Len())
		for i, j := range tr.Jobs {
			out[i] = math.Log1p(j.Run)
		}
		return out
	}
	if d := stats.KolmogorovSmirnov(logRT(orig), logRT(regen)); d > 0.35 {
		t.Fatalf("log-runtime KS distance %v too large", d)
	}
}

func TestFromTraceHPCWalltimes(t *testing.T) {
	orig, err := Theta(8).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := FromTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.WalltimeFactorHi <= fitted.WalltimeFactorLo || fitted.WalltimeFactorLo < 1 {
		t.Fatalf("walltime factors not fitted: lo=%v hi=%v",
			fitted.WalltimeFactorLo, fitted.WalltimeFactorHi)
	}
	if fitted.WalltimeKillFrac <= 0 {
		t.Fatalf("walltime kill fraction not fitted: %v", fitted.WalltimeKillFrac)
	}
	regen, err := fitted.Generate(50)
	if err != nil {
		t.Fatal(err)
	}
	// regenerated HPC jobs must carry walltimes
	withWall := 0
	for _, j := range regen.Jobs {
		if j.Walltime > 0 {
			withWall++
		}
	}
	if float64(withWall)/float64(regen.Len()) < 0.9 {
		t.Fatal("regenerated trace lost walltimes")
	}
}

func TestFitBurstiness(t *testing.T) {
	// Exponential intervals (CV=1) should fit burstiness ~1.
	exp := make([]float64, 5000)
	r := dist.NewRNG(7)
	for i := range exp {
		exp[i] = -math.Log(r.Float64Open())
	}
	if b := fitBurstiness(exp); b < 0.9 || b > 1.3 {
		t.Fatalf("exponential fit burstiness %v want ~1", b)
	}
	// Heavy-tailed (bursty) intervals should fit burstiness > 1.3.
	heavy := make([]float64, 5000)
	for i := range heavy {
		u := r.Float64Open()
		heavy[i] = math.Pow(u, -1.2) // Pareto-ish
	}
	if b := fitBurstiness(heavy); b < 1.3 {
		t.Fatalf("heavy-tail fit burstiness %v want > 1.3", b)
	}
	if fitBurstiness(nil) != 1 {
		t.Fatal("empty intervals should fit 1")
	}
}

func TestFitSizes(t *testing.T) {
	tr := trace.New(trace.System{Name: "X", Kind: trace.DL, TotalCores: 100})
	for i := 0; i < 80; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{User: 0, Submit: float64(i), Wait: 0, Run: 10, Procs: 1, VC: -1})
	}
	for i := 0; i < 20; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{User: 0, Submit: 100 + float64(i), Wait: 0, Run: 10, Procs: 8, VC: -1})
	}
	tr.SortBySubmit()
	choices, weights := fitSizes(tr)
	if len(choices) != 2 || choices[0] != 1 || choices[1] != 8 {
		t.Fatalf("choices %v", choices)
	}
	if weights[0] != 80 || weights[1] != 20 {
		t.Fatalf("weights %v", weights)
	}
}

func TestZipfTopShare(t *testing.T) {
	// s=1 over 2 ranks: shares 1/1.5 and 0.5/1.5
	if got := zipfTopShare(2, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("top share %v want 2/3", got)
	}
}

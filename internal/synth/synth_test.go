package synth

import (
	"math"
	"testing"

	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// gen generates a profile's trace once per test binary run.
var genCache = map[string]*trace.Trace{}

func gen(t *testing.T, name string, days float64) *trace.Trace {
	t.Helper()
	key := name
	if tr, ok := genCache[key]; ok {
		return tr
	}
	p, err := ByName(name, days)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	genCache[key] = tr
	return tr
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Frontier", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	base := func() *Profile { return Mira(1) }
	mods := []func(*Profile){
		func(p *Profile) { p.Sys.TotalCores = 0 },
		func(p *Profile) { p.Days = 0 },
		func(p *Profile) { p.JobsPerDay = 0 },
		func(p *Profile) { p.Users = 0 },
		func(p *Profile) { p.SizeChoices = nil },
		func(p *Profile) { p.SizeWeights = p.SizeWeights[:1] },
		func(p *Profile) { p.RuntimeMedian = nil },
		func(p *Profile) { p.TemplatesPerUser = 0 },
		func(p *Profile) { p.QueueScale = 0 },
		func(p *Profile) { p.SizeChoices = append([]int(nil), p.SizeChoices...); p.SizeChoices[0] = -1 },
		func(p *Profile) {
			p.SizeChoices = append([]int(nil), p.SizeChoices...)
			p.SizeChoices[0] = p.Sys.TotalCores * 2
		},
	}
	for i, mod := range mods {
		p := base()
		mod(p)
		if err := p.Validate(); err == nil {
			t.Fatalf("bad profile %d accepted", i)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	for _, name := range SystemNames {
		tr := gen(t, name, 10)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", name, err)
		}
		if tr.Len() < 500 {
			t.Fatalf("%s: suspiciously few jobs: %d", name, tr.Len())
		}
		for i, j := range tr.Jobs {
			if j.Wait < 0 {
				t.Fatalf("%s: job %d has unknown wait", name, i)
			}
			if j.Run <= 0 {
				t.Fatalf("%s: job %d non-positive runtime", name, i)
			}
			if j.Walltime > 0 && j.Walltime < j.Run {
				t.Fatalf("%s: job %d walltime %v < run %v", name, i, j.Walltime, j.Run)
			}
			if tr.System.VirtualClusters > 1 && (j.VC < 0 || j.VC >= tr.System.VirtualClusters) {
				t.Fatalf("%s: job %d bad VC %d", name, i, j.VC)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Helios(2)
	a, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Helios(2).Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
	c, err := Helios(2).Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i] != c.Jobs[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// --- Calibration tests: each asserts a paper-reported statistic within a
// generous band. These pin the generators to the paper's Figure 1/2/6
// shapes; see DESIGN.md "Calibration targets".

func TestCalibrationRuntimeMedians(t *testing.T) {
	// Paper: BW/Mira ~1.5h; Philly ~12min; Helios ~90s; HPC >> DL.
	med := func(name string) float64 { return stats.Median(gen(t, name, 10).Runtimes()) }
	bw, mira, theta := med("BlueWaters"), med("Mira"), med("Theta")
	philly, helios := med("Philly"), med("Helios")
	if bw < 1800 || bw > 10800 {
		t.Fatalf("BW median runtime %v outside [0.5h, 3h]", bw)
	}
	if mira < 2700 || mira > 14400 {
		t.Fatalf("Mira median runtime %v outside [0.75h, 4h]", mira)
	}
	if philly < 240 || philly > 2400 {
		t.Fatalf("Philly median runtime %v outside [4min, 40min]", philly)
	}
	if helios < 30 || helios > 300 {
		t.Fatalf("Helios median runtime %v outside [30s, 5min]", helios)
	}
	if !(helios < philly && philly < bw && bw <= mira*2 && theta > philly) {
		t.Fatalf("runtime ordering broken: helios=%v philly=%v theta=%v bw=%v mira=%v",
			helios, philly, theta, bw, mira)
	}
}

func TestCalibrationRuntimeDispersion(t *testing.T) {
	// Paper (Fig 1a bottom): DL runtimes are more diverse than HPC —
	// wider in both tails on a log scale.
	spread := func(name string) float64 {
		rt := gen(t, name, 10).Runtimes()
		return math.Log10(stats.Quantile(rt, 0.99)) - math.Log10(stats.Quantile(rt, 0.01))
	}
	if spread("Philly") <= spread("Mira") {
		t.Fatalf("Philly log-spread %v not wider than Mira %v", spread("Philly"), spread("Mira"))
	}
	if spread("Helios") <= spread("Theta") {
		t.Fatalf("Helios log-spread %v not wider than Theta %v", spread("Helios"), spread("Theta"))
	}
}

func TestCalibrationArrivalIntervals(t *testing.T) {
	// Paper: DL/hybrid medians 5-10s; HPC ~10x larger.
	med := func(name string) float64 { return stats.Median(gen(t, name, 10).ArrivalIntervals()) }
	for _, name := range []string{"BlueWaters", "Philly", "Helios"} {
		if m := med(name); m < 1 || m > 30 {
			t.Fatalf("%s median interval %v outside [1s, 30s]", name, m)
		}
	}
	for _, name := range []string{"Mira", "Theta"} {
		if m := med(name); m < 60 || m > 900 {
			t.Fatalf("%s median interval %v outside [60s, 900s]", name, m)
		}
		if med(name) < 8*med("Helios") {
			t.Fatalf("%s interval not ~10x the DL scale", name)
		}
	}
}

func TestCalibrationDiurnalShapes(t *testing.T) {
	// Paper (Fig 1b bottom): Helios/BW strongly peaked (~10x max/min);
	// Philly flat (~2.5x).
	ratio := func(name string) float64 {
		tr := gen(t, name, 10)
		counts := stats.HourlyCounts(tr.Submits(), tr.System.StartHour)
		return stats.MaxMinRatio(counts)
	}
	if r := ratio("Helios"); r < 4 {
		t.Fatalf("Helios diurnal ratio %v want >= 4", r)
	}
	if r := ratio("BlueWaters"); r < 4 {
		t.Fatalf("BW diurnal ratio %v want >= 4", r)
	}
	if r := ratio("Philly"); r > 4 {
		t.Fatalf("Philly diurnal ratio %v want flat (< 4)", r)
	}
	if ratio("Philly") >= ratio("Helios") {
		t.Fatal("Philly should be flatter than Helios")
	}
}

func TestCalibrationJobSizes(t *testing.T) {
	// Paper (Fig 1c): ~80% of DL jobs request a single GPU; >50% of Mira
	// jobs request >1000 cores; BW median 32 nodes.
	frac1 := func(name string) float64 {
		tr := gen(t, name, 10)
		n := 0
		for _, j := range tr.Jobs {
			if j.Procs == 1 {
				n++
			}
		}
		return float64(n) / float64(tr.Len())
	}
	if f := frac1("Philly"); f < 0.7 || f > 0.95 {
		t.Fatalf("Philly single-GPU fraction %v outside [0.7, 0.95]", f)
	}
	if f := frac1("Helios"); f < 0.65 || f > 0.95 {
		t.Fatalf("Helios single-GPU fraction %v outside [0.65, 0.95]", f)
	}
	mira := gen(t, "Mira", 10)
	over1000 := 0
	for _, j := range mira.Jobs {
		if j.Procs > 1000 {
			over1000++
		}
	}
	if f := float64(over1000) / float64(mira.Len()); f < 0.5 {
		t.Fatalf("Mira jobs >1000 cores fraction %v want > 0.5", f)
	}
	bw := gen(t, "BlueWaters", 10)
	medNodes := stats.Median(bw.Procs()) / float64(bw.System.CoresPerNode)
	if medNodes < 8 || medNodes > 64 {
		t.Fatalf("BW median nodes %v outside [8, 64]", medNodes)
	}
}

func TestCalibrationCoreHourDomination(t *testing.T) {
	// Paper (Fig 2): small-job core-hour share: BW > 85%; Mira < ~45%;
	// Theta lowest of HPC; Helios < 10%. Length: HPC dominated by middle,
	// DL by long.
	smallShare := func(name string) float64 {
		tr := gen(t, name, 10)
		small, tot := 0.0, 0.0
		for _, j := range tr.Jobs {
			ch := j.CoreHours()
			tot += ch
			if sizeCategory3(tr.System.Kind, j.Procs, tr.System.TotalCores) == 0 {
				small += ch
			}
		}
		return small / tot
	}
	if s := smallShare("BlueWaters"); s < 0.85 {
		t.Fatalf("BW small-job CH share %v want > 0.85", s)
	}
	if s := smallShare("Mira"); s > 0.50 {
		t.Fatalf("Mira small-job CH share %v want < 0.50", s)
	}
	if s := smallShare("Helios"); s > 0.10 {
		t.Fatalf("Helios small-job CH share %v want < 0.10", s)
	}
	// Paper: Theta's small share (~16%) is also minor. (The exact
	// Theta-vs-Mira ordering is sample-noise sensitive, so we assert the
	// band, not the ordering.)
	if s := smallShare("Theta"); s > 0.35 {
		t.Fatalf("Theta small-job CH share %v want < 0.35", s)
	}

	lenShare := func(name string) [3]float64 {
		tr := gen(t, name, 10)
		var by [3]float64
		tot := 0.0
		for _, j := range tr.Jobs {
			ch := j.CoreHours()
			by[lengthCategory(j.Run)] += ch
			tot += ch
		}
		for i := range by {
			by[i] /= tot
		}
		return by
	}
	for _, name := range []string{"BlueWaters", "Mira", "Theta"} {
		by := lenShare(name)
		if !(by[1] > by[0] && by[1] > by[2]) {
			t.Fatalf("%s core hours not middle-dominated: %v", name, by)
		}
	}
	for _, name := range []string{"Philly", "Helios"} {
		by := lenShare(name)
		if !(by[2] > by[0] && by[2] > by[1]) {
			t.Fatalf("%s core hours not long-dominated: %v", name, by)
		}
	}
}

func TestCalibrationStatusDistribution(t *testing.T) {
	// Paper (Fig 6): Passed < 70% everywhere; Philly the highest failure
	// rate; killed jobs consume disproportionate core hours; failed jobs
	// consume less than their count share.
	for _, name := range SystemNames {
		tr := gen(t, name, 10)
		var counts [3]float64
		var hours [3]float64
		tot := 0.0
		for _, j := range tr.Jobs {
			counts[j.Status]++
			hours[j.Status] += j.CoreHours()
			tot += j.CoreHours()
		}
		n := float64(tr.Len())
		passFrac := counts[trace.Passed] / n
		if passFrac > 0.75 {
			t.Fatalf("%s pass fraction %v want < 0.75", name, passFrac)
		}
		if passFrac < 0.4 {
			t.Fatalf("%s pass fraction %v implausibly low", name, passFrac)
		}
		killCount := counts[trace.Killed] / n
		killHours := hours[trace.Killed] / tot
		if killHours < killCount {
			t.Fatalf("%s killed CH share %v below count share %v", name, killHours, killCount)
		}
		failCount := counts[trace.Failed] / n
		failHours := hours[trace.Failed] / tot
		if failHours > failCount {
			t.Fatalf("%s failed CH share %v above count share %v", name, failHours, failCount)
		}
	}
	// Philly has the highest failure(+kill) rate.
	notPassed := func(name string) float64 {
		tr := gen(t, name, 10)
		n := 0
		for _, j := range tr.Jobs {
			if j.Status != trace.Passed {
				n++
			}
		}
		return float64(n) / float64(tr.Len())
	}
	p := notPassed("Philly")
	for _, name := range []string{"Mira", "Theta", "BlueWaters", "Helios"} {
		if notPassed(name) > p {
			t.Fatalf("%s not-passed %v exceeds Philly %v", name, notPassed(name), p)
		}
	}
}

func TestCalibrationFailureVsRuntime(t *testing.T) {
	// Paper (Fig 7b): pass rate decreases with runtime everywhere; the
	// drop comes mostly from more Killed jobs. Mira long jobs ~99% killed.
	passRateByLen := func(name string) [3]float64 {
		tr := gen(t, name, 10)
		var pass, tot [3]float64
		for _, j := range tr.Jobs {
			c := lengthCategory(j.Run)
			tot[c]++
			if j.Status == trace.Passed {
				pass[c]++
			}
		}
		var out [3]float64
		for i := range out {
			if tot[i] > 0 {
				out[i] = pass[i] / tot[i]
			}
		}
		return out
	}
	for _, name := range SystemNames {
		pr := passRateByLen(name)
		if pr[2] >= pr[0] {
			t.Fatalf("%s long-job pass rate %v not below short %v", name, pr[2], pr[0])
		}
	}
	mira := passRateByLen("Mira")
	if mira[2] > 0.15 {
		t.Fatalf("Mira long-job pass rate %v want near zero (paper: ~99%% killed)", mira[2])
	}
}

func TestCalibrationFailureVsSizeDLOnly(t *testing.T) {
	// Paper (Fig 7a): pass rate drops with size on Philly/Helios but not
	// clearly on the HPC systems.
	passRateBySize := func(name string) [3]float64 {
		tr := gen(t, name, 10)
		var pass, tot [3]float64
		for _, j := range tr.Jobs {
			c := sizeCategory3(tr.System.Kind, j.Procs, tr.System.TotalCores)
			tot[c]++
			if j.Status == trace.Passed {
				pass[c]++
			}
		}
		var out [3]float64
		for i := range out {
			if tot[i] > 0 {
				out[i] = pass[i] / tot[i]
			}
		}
		return out
	}
	for _, name := range []string{"Philly", "Helios"} {
		pr := passRateBySize(name)
		if pr[2] >= pr[0] {
			t.Fatalf("%s pass rate should fall with size: %v", name, pr)
		}
	}
}

func TestCalibrationWaits(t *testing.T) {
	// Paper (Fig 4): Helios 80% < 10s; Philly >50% >= 10min; BW the
	// longest waits; Mira shorter than BW.
	waits := func(name string) []float64 { return gen(t, name, 10).Waits() }
	if p80 := stats.Quantile(waits("Helios"), 0.8); p80 > 10 {
		t.Fatalf("Helios p80 wait %v want <= 10s", p80)
	}
	if p50 := stats.Median(waits("Philly")); p50 < 300 {
		t.Fatalf("Philly median wait %v want >= 5min", p50)
	}
	bw := stats.Median(waits("BlueWaters"))
	if bw < 600 {
		t.Fatalf("BW median wait %v want >= 10min", bw)
	}
	for _, name := range []string{"Mira", "Theta", "Philly", "Helios"} {
		if m := stats.Median(waits(name)); m > bw {
			t.Fatalf("%s median wait %v exceeds BW %v", name, m, bw)
		}
	}
}

func TestCalibrationUtilization(t *testing.T) {
	// Paper (Fig 3): Philly lowest (~0.43) despite queued jobs; Mira and
	// Theta high (~0.87-0.88).
	util := func(name string) float64 { return occupancyUtil(gen(t, name, 10)) }
	p := util("Philly")
	if p < 0.2 || p > 0.6 {
		t.Fatalf("Philly utilization %v outside [0.2, 0.6]", p)
	}
	for _, name := range []string{"Mira", "Theta", "BlueWaters", "Helios"} {
		if util(name) <= p {
			t.Fatalf("%s utilization %v not above Philly %v", name, util(name), p)
		}
	}
	if m := util("Mira"); m < 0.75 {
		t.Fatalf("Mira utilization %v want >= 0.75", m)
	}
}

func TestCalibrationUserRepetition(t *testing.T) {
	// Paper (Fig 8): top-10 groups ~90%; top-3 lower on DL (~60%) than
	// HPC (>80%). Grouping: same procs, runtime within 10% of group mean.
	top := func(name string, k int) float64 {
		tr := gen(t, name, 10)
		return topGroupCoverage(tr, k)
	}
	for _, name := range SystemNames {
		if c := top(name, 10); c < 0.6 {
			t.Fatalf("%s top-10 group coverage %v want >= 0.6", name, c)
		}
	}
	hpc3 := (top("Mira", 3) + top("Theta", 3) + top("BlueWaters", 3)) / 3
	dl3 := (top("Philly", 3) + top("Helios", 3)) / 2
	if dl3 >= hpc3 {
		t.Fatalf("DL top-3 coverage %v should be below HPC %v", dl3, hpc3)
	}
}

// topGroupCoverage computes the average (over heavy users) fraction of a
// user's jobs covered by their k largest resource-configuration groups.
// This mirrors analysis.UserGroups but lives here so the synth package can
// be calibrated standalone.
func topGroupCoverage(tr *trace.Trace, k int) float64 {
	byUser := tr.JobsByUser()
	users := tr.TopUsersByJobCount(20)
	covSum, covN := 0.0, 0
	for _, u := range users {
		idxs := byUser[u]
		if len(idxs) < 20 {
			continue
		}
		// group by (procs, runtime cluster): sort runtimes per procs and
		// cluster greedily within 10% of the running mean.
		byProcs := map[int][]float64{}
		for _, i := range idxs {
			byProcs[tr.Jobs[i].Procs] = append(byProcs[tr.Jobs[i].Procs], tr.Jobs[i].Run)
		}
		var groupSizes []int
		for _, runs := range byProcs {
			groupSizes = append(groupSizes, clusterRuns(runs)...)
		}
		// sort descending
		for i := 0; i < len(groupSizes); i++ {
			for j := i + 1; j < len(groupSizes); j++ {
				if groupSizes[j] > groupSizes[i] {
					groupSizes[i], groupSizes[j] = groupSizes[j], groupSizes[i]
				}
			}
		}
		inTop := 0
		for i := 0; i < len(groupSizes) && i < k; i++ {
			inTop += groupSizes[i]
		}
		covSum += float64(inTop) / float64(len(idxs))
		covN++
	}
	if covN == 0 {
		return 0
	}
	return covSum / float64(covN)
}

// clusterRuns greedily clusters sorted runtimes into groups whose members
// stay within 10% of the group's running mean; returns group sizes.
func clusterRuns(runs []float64) []int {
	c := append([]float64(nil), runs...)
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if c[j] < c[i] {
				c[i], c[j] = c[j], c[i]
			}
		}
	}
	var sizes []int
	i := 0
	for i < len(c) {
		mean := c[i]
		n := 1
		j := i + 1
		for j < len(c) {
			if math.Abs(c[j]-mean) <= 0.1*mean {
				mean = (mean*float64(n) + c[j]) / float64(n+1)
				n++
				j++
			} else {
				break
			}
		}
		sizes = append(sizes, n)
		i = j
	}
	return sizes
}

func TestCalibrationQueueAdaptiveSize(t *testing.T) {
	// Paper (Fig 9): as the queue grows, the share of minimal requests
	// grows, on every system.
	for _, name := range []string{"Philly", "Helios", "BlueWaters"} {
		tr := gen(t, name, 10)
		loQ, hiQ := queueTerciles(tr)
		loMin, hiMin := minimalShareByQueue(tr, loQ, hiQ)
		if hiMin <= loMin {
			t.Fatalf("%s minimal-request share should grow with queue: lo=%v hi=%v",
				name, loMin, hiMin)
		}
	}
}

func TestCalibrationQueueAdaptiveRuntimeDLOnly(t *testing.T) {
	// Paper (Fig 10): under long queues users submit shorter jobs on DL
	// systems; on HPC the effect is absent.
	shorter := func(name string) (lo, hi float64) {
		tr := gen(t, name, 10)
		loQ, hiQ := queueTerciles(tr)
		return medianRunByQueue(tr, loQ, hiQ)
	}
	for _, name := range []string{"Philly", "Helios"} {
		lo, hi := shorter(name)
		if hi >= lo {
			t.Fatalf("%s runtime under load (%v) should be below idle (%v)", name, hi, lo)
		}
	}
	loM, hiM := shorter("Mira")
	if hiM < loM*0.5 {
		t.Fatalf("Mira runtimes should be insensitive to queue: lo=%v hi=%v", loM, hiM)
	}
}

// queueTerciles returns the 1/3 and 2/3 quantiles of per-submission queue
// lengths reconstructed from the recorded waits.
func queueTerciles(tr *trace.Trace) (float64, float64) {
	q := queueLengths(tr)
	return stats.Quantile(q, 1.0/3), stats.Quantile(q, 2.0/3)
}

// queueLengths reconstructs the queue length observed at each submission:
// the number of earlier jobs submitted but not yet started.
func queueLengths(tr *trace.Trace) []float64 {
	// sweep: jobs sorted by submit; maintain multiset of start times.
	starts := make([]float64, 0, tr.Len())
	out := make([]float64, tr.Len())
	for i, j := range tr.Jobs {
		// drop starts <= submit
		w := 0
		for _, s := range starts {
			if s > j.Submit {
				starts[w] = s
				w++
			}
		}
		starts = starts[:w]
		out[i] = float64(len(starts))
		starts = append(starts, j.Start())
	}
	return out
}

func minimalShareByQueue(tr *trace.Trace, loQ, hiQ float64) (lo, hi float64) {
	q := queueLengths(tr)
	var loMin, loTot, hiMin, hiTot float64
	minProcs := tr.Jobs[0].Procs
	for _, j := range tr.Jobs {
		if j.Procs < minProcs {
			minProcs = j.Procs
		}
	}
	for i, j := range tr.Jobs {
		switch {
		case q[i] <= loQ:
			loTot++
			if j.Procs == minProcs {
				loMin++
			}
		case q[i] > hiQ:
			hiTot++
			if j.Procs == minProcs {
				hiMin++
			}
		}
	}
	if loTot == 0 || hiTot == 0 {
		return 0, 0
	}
	return loMin / loTot, hiMin / hiTot
}

func medianRunByQueue(tr *trace.Trace, loQ, hiQ float64) (lo, hi float64) {
	q := queueLengths(tr)
	var loRuns, hiRuns []float64
	for i, j := range tr.Jobs {
		switch {
		case q[i] <= loQ:
			loRuns = append(loRuns, j.Run)
		case q[i] > hiQ:
			hiRuns = append(hiRuns, j.Run)
		}
	}
	return stats.Median(loRuns), stats.Median(hiRuns)
}

func TestShadowSchedulerBasics(t *testing.T) {
	s := newShadow(10)
	starts := map[int]float64{}
	cb := func(id int, st float64) { starts[id] = st }
	// job 0 takes all cores at t=0 for 100s
	s.advance(0, cb)
	if q := s.submit(shadowJob{id: 0, procs: 10, run: 100, submit: 0}, cb); q != 0 {
		t.Fatalf("observed queue %d want 0", q)
	}
	if starts[0] != 0 {
		t.Fatal("job 0 should start immediately")
	}
	// job 1 must queue
	s.advance(5, cb)
	s.submit(shadowJob{id: 1, procs: 4, run: 10, submit: 5}, cb)
	if _, ok := starts[1]; ok {
		t.Fatal("job 1 started while full")
	}
	if s.queueLen() != 1 {
		t.Fatalf("queue len %d want 1", s.queueLen())
	}
	// at t=100 job 0 ends; job 1 starts at exactly 100
	s.advance(150, cb)
	if starts[1] != 100 {
		t.Fatalf("job 1 start %v want 100", starts[1])
	}
	s.flush(cb)
	if s.queueLen() != 0 {
		t.Fatal("flush left queued jobs")
	}
}

func TestShadowFirstFitSkipsBlocked(t *testing.T) {
	s := newShadow(10)
	starts := map[int]float64{}
	cb := func(id int, st float64) { starts[id] = st }
	s.submit(shadowJob{id: 0, procs: 8, run: 100, submit: 0}, cb)
	s.submit(shadowJob{id: 1, procs: 8, run: 10, submit: 1}, cb) // blocked
	s.submit(shadowJob{id: 2, procs: 2, run: 10, submit: 2}, cb) // fits hole
	if _, ok := starts[2]; !ok {
		t.Fatal("small job should first-fit into the hole")
	}
	if starts[2] != 2 {
		t.Fatalf("small job start %v want 2", starts[2])
	}
	s.flush(cb)
	if starts[1] != 100 {
		t.Fatalf("blocked job start %v want 100", starts[1])
	}
}

package synth

import (
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

func TestFaultModel(t *testing.T) {
	for name, p := range Profiles(1) {
		cfg := p.FaultModel(9)
		if !cfg.Enabled() {
			t.Errorf("%s: derived fault model is disabled", name)
			continue
		}
		if err := cfg.Validate(0); err != nil {
			t.Errorf("%s: invalid derived config: %v", name, err)
		}
		if cfg.InterruptProb <= 0 || cfg.InterruptProb >= 1 {
			t.Errorf("%s: interrupt probability %v outside (0, 1)", name, cfg.InterruptProb)
		}
		if cfg.MTBF < 86400 || cfg.MTBF > 14*86400 {
			t.Errorf("%s: MTBF %v outside [1, 14] days", name, cfg.MTBF)
		}
		// DL systems checkpoint; HPC and hybrid requeue from zero.
		want := fault.RecoveryRequeue
		if p.Sys.Kind == trace.DL {
			want = fault.RecoveryCheckpoint
		}
		if cfg.Recovery != want {
			t.Errorf("%s: recovery %v, want %v", name, cfg.Recovery, want)
		}
		// Pure function of (profile, seed).
		if again := p.FaultModel(9); again.Spec() != cfg.Spec() {
			t.Errorf("%s: fault model is not deterministic", name)
		}
		if other := p.FaultModel(10); other.Seed == cfg.Seed {
			t.Errorf("%s: seed not threaded into the config", name)
		}
	}
}

// TestFaultModelDrives checks the derived scenario end to end: generating a
// trace from the profile and simulating it under the profile's own fault
// model must inject interrupts and produce a sane goodput/wasted split.
func TestFaultModelDrives(t *testing.T) {
	p := VerifyHPC(0.3)
	// The tiny verification profile has mild failure rates; boost them so
	// the short trace sees faults without needing days of workload.
	p.FailByLength = [3]float64{0.3, 0.4, 0.5}
	p.KillByLength = [3]float64{0.2, 0.2, 0.2}
	tr, err := p.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.FaultModel(4)
	cfg.Horizon = tr.Jobs[tr.Len()-1].Submit
	res, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, Faults: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted == 0 {
		t.Error("derived fault model interrupted nothing")
	}
	if res.GoodputCoreSeconds <= 0 {
		t.Errorf("goodput %v, want > 0", res.GoodputCoreSeconds)
	}
	if res.WastedCoreSeconds <= 0 {
		t.Errorf("wasted %v, want > 0", res.WastedCoreSeconds)
	}
}

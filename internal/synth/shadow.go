// Package synth generates synthetic job traces whose joint distributions are
// calibrated to the five systems the paper analyzes (Mira, Theta, Blue
// Waters, Philly, Helios). The paper's production traces are proprietary or
// impractically large; these generators encode the reported marginals and
// correlations — runtime mixtures, diurnal bursty arrivals, size
// distributions, per-user repeated job templates, runtime/size-conditioned
// failure models, and queue-pressure-adaptive submission behavior — so every
// analysis in the paper exercises the same code paths and reproduces the
// same qualitative shapes.
package synth

import (
	"container/heap"
	"math"
	"sort"
)

// shadow is a lightweight first-fit FIFO scheduler used for two purposes:
// (1) during generation it provides the queue length each simulated user
// observes at submission time (driving the paper's Figures 9-10 adaptive
// behavior), and (2) it assigns each job the waiting time a real system's
// scheduler would have recorded into the trace (Figures 3-5 read these, the
// way the paper reads recorded waits out of real traces).
//
// Capability ("large") jobs receive production-style special treatment:
// they queue ahead of ordinary jobs and, while one is blocked, the machine
// drains for it — ordinary jobs may only backfill if they finish before the
// drain's estimated completion (EASY semantics). This is what makes
// middle-size jobs, not the largest ones, wait longest (the paper's
// Figure 5 observation).
type shadow struct {
	free    int
	queue   []shadowJob
	minHeap endHeap
	// dirty marks that resources were freed since the last queue scan.
	dirty bool
	// maxQueue tracks the largest queue length seen (adaptive normalizer).
	maxQueue int
	// largeQueued counts waiting capability jobs; while positive, the
	// machine is draining and ordinary arrivals must honor drainDeadline.
	largeQueued int
	// drainDeadline is the estimated start time of the blocked capability
	// job at the front of the queue; +Inf when not draining.
	drainDeadline float64
}

// shadowJob is a queued job in the shadow scheduler.
type shadowJob struct {
	id     int
	procs  int
	run    float64
	submit float64
	// large marks special-purpose capability jobs (see shadow docs).
	large bool
}

// shadowEnd is one running job's completion.
type shadowEnd struct {
	end   float64
	procs int
}

// endHeap is a min-heap over completion times.
type endHeap []shadowEnd

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(shadowEnd)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newShadow returns a shadow scheduler over capacity cores.
func newShadow(capacity int) *shadow {
	return &shadow{free: capacity, drainDeadline: math.Inf(1)}
}

// advance processes completions up to time now and starts eligible queued
// jobs first-fit. onStart is invoked with (id, startTime) for each started
// job.
func (s *shadow) advance(now float64, onStart func(id int, start float64)) {
	for s.minHeap.Len() > 0 && s.minHeap[0].end <= now {
		e := heap.Pop(&s.minHeap).(shadowEnd)
		s.free += e.procs
		s.dirty = true
		// Start jobs at the completion instant, not at now, so recorded
		// waits match an event-driven scheduler.
		s.drain(e.end, onStart)
	}
}

// shadowStart estimates when `needed` cores will be free, assuming the
// currently running jobs release at their expected ends.
func (s *shadow) shadowStart(at float64, needed int) float64 {
	if needed <= s.free {
		return at
	}
	ends := append([]shadowEnd(nil), s.minHeap...)
	sort.Slice(ends, func(a, b int) bool { return ends[a].end < ends[b].end })
	free := s.free
	for _, e := range ends {
		free += e.procs
		if free >= needed {
			return e.end
		}
	}
	if len(ends) > 0 {
		return ends[len(ends)-1].end
	}
	return at
}

// drain scans the FIFO queue first-fit, starting anything that fits; a
// blocked capability job stops ordinary starts except EASY-style backfills
// that finish before its estimated start.
func (s *shadow) drain(at float64, onStart func(id int, start float64)) {
	if !s.dirty {
		return
	}
	s.dirty = false
	s.drainDeadline = math.Inf(1)
	draining := false
	w := 0
	for i := 0; i < len(s.queue); i++ {
		j := s.queue[i]
		ok := j.procs <= s.free
		if ok && draining && !j.large {
			ok = at+j.run <= s.drainDeadline
		}
		if ok {
			s.free -= j.procs
			heap.Push(&s.minHeap, shadowEnd{end: at + j.run, procs: j.procs})
			onStart(j.id, at)
			if j.large {
				s.largeQueued--
			}
			continue
		}
		s.queue[w] = j
		w++
		if s.free == 0 {
			// nothing else can start; keep the remaining tail as-is
			copy(s.queue[w:], s.queue[i+1:])
			w += len(s.queue) - i - 1
			break
		}
		if j.large && !draining {
			// The machine drains for the highest-priority blocked
			// capability job; estimate when it can start.
			draining = true
			s.drainDeadline = s.shadowStart(at, j.procs)
		}
	}
	s.queue = s.queue[:w]
	if s.largeQueued == 0 {
		s.drainDeadline = math.Inf(1)
	}
}

// submit offers a job at time now. advance(now) must be called first.
// Returns the queue length observed before this submission.
func (s *shadow) submit(j shadowJob, onStart func(id int, start float64)) int {
	observed := len(s.queue)
	fits := j.procs <= s.free
	if fits && !j.large && s.largeQueued > 0 {
		fits = j.submit+j.run <= s.drainDeadline
	}
	if fits {
		// first-fit: a fitting job may jump the queue (backfill-style),
		// within the drain deadline when a capability job is waiting.
		s.free -= j.procs
		heap.Push(&s.minHeap, shadowEnd{end: j.submit + j.run, procs: j.procs})
		onStart(j.id, j.submit)
	} else if j.large {
		s.largeQueued++
		// priority insert: after existing large jobs, before the rest
		pos := 0
		for pos < len(s.queue) && s.queue[pos].large {
			pos++
		}
		s.queue = append(s.queue, shadowJob{})
		copy(s.queue[pos+1:], s.queue[pos:])
		s.queue[pos] = j
		if s.largeQueued == 1 {
			s.drainDeadline = s.shadowStart(j.submit, j.procs)
		}
	} else {
		s.queue = append(s.queue, j)
	}
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
	return observed
}

// queueLen returns the current queue length.
func (s *shadow) queueLen() int { return len(s.queue) }

// flush drains all remaining work after the last arrival so every job gets
// a start time.
func (s *shadow) flush(onStart func(id int, start float64)) {
	for s.minHeap.Len() > 0 {
		e := heap.Pop(&s.minHeap).(shadowEnd)
		s.free += e.procs
		s.dirty = true
		s.drain(e.end, onStart)
	}
}

package synth

import (
	"fmt"
	"math"
	"sort"

	"crosssched/internal/dist"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// FromTrace fits a Profile that approximates an observed trace, enabling
// the paper's "analyze your own trace" workflow to also generate matched
// synthetic workloads (e.g. to extrapolate a trace, anonymize it, or stress
// schedulers against heavier versions of it). The fit is moment/quantile
// matching per component:
//
//   - arrival rate and diurnal weights from hourly counts;
//   - burstiness from the inter-arrival coefficient of variation via the
//     Weibull CV relation;
//   - size distribution from the empirical request histogram;
//   - runtime distribution from a log-normal fit of sub-day runtimes plus
//     an explicit >1-day tail component;
//   - failure and walltime models from measured per-length-class rates;
//   - queue-adaptive strengths from the short-vs-long queue contrasts.
//
// The returned profile is Validate()-clean and can be generated directly.
func FromTrace(tr *trace.Trace) (*Profile, error) {
	if tr.Len() < 100 {
		return nil, fmt.Errorf("synth: trace too small to fit (%d jobs)", tr.Len())
	}
	days := tr.Duration() / 86400
	if last := tr.Jobs[tr.Len()-1].Submit / 86400; last > 0 && last < days {
		days = last // fit the submission window, not the completion tail
	}
	if days <= 0 {
		return nil, fmt.Errorf("synth: trace has no time span")
	}

	p := &Profile{
		Sys:  tr.System,
		Days: days,
	}
	p.JobsPerDay = float64(tr.Len()) / days
	p.HourlyWeights = fitHourly(tr)
	p.Burstiness = fitBurstiness(tr.ArrivalIntervals())
	p.Users = len(tr.Users())
	if p.Users == 0 {
		p.Users = 1
	}
	p.UserZipfS = fitUserZipf(tr)
	p.TemplatesPerUser, p.TemplateZipfS = fitTemplates(tr)
	p.SizeChoices, p.SizeWeights = fitSizes(tr)
	p.RefProcs = p.SizeChoices[len(p.SizeChoices)/2]
	p.SizeRuntimeCorr = 0

	fitRuntime(p, tr)
	fitFailures(p, tr)
	fitAdaptation(p, tr)

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synth: fitted profile invalid: %w", err)
	}
	return p, nil
}

// fitHourly measures the diurnal weights.
func fitHourly(tr *trace.Trace) [24]float64 {
	counts := stats.HourlyCounts(tr.Submits(), tr.System.StartHour)
	var w [24]float64
	for i, c := range counts {
		w[i] = float64(c) + 1 // +1 smoothing avoids dead hours stalling
	}
	return w
}

// fitBurstiness inverts the Weibull CV relation: for shape k,
// CV^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1; burstiness is 1/k.
func fitBurstiness(intervals []float64) float64 {
	if len(intervals) < 10 {
		return 1
	}
	m := stats.Mean(intervals)
	sd := stats.Stddev(intervals)
	if m <= 0 || sd <= 0 {
		return 1
	}
	targetCV := sd / m
	if targetCV < 1 {
		targetCV = 1 // never fit below Poisson
	}
	lo, hi := 0.2, 1.0 // k in [0.2, 1] covers CV in [1, ~16]
	for iter := 0; iter < 60; iter++ {
		k := (lo + hi) / 2
		cv := weibullCV(k)
		if cv > targetCV {
			lo = k
		} else {
			hi = k
		}
	}
	k := (lo + hi) / 2
	b := 1 / k
	if b < 1 {
		b = 1
	}
	if b > 4 {
		b = 4
	}
	return b
}

func weibullCV(k float64) float64 {
	g1 := math.Gamma(1 + 1/k)
	g2 := math.Gamma(1 + 2/k)
	return math.Sqrt(g2/(g1*g1) - 1)
}

// fitUserZipf fits the activity exponent so the top user's modeled share
// matches the observed one.
func fitUserZipf(tr *trace.Trace) float64 {
	counts := map[int]int{}
	for i := range tr.Jobs {
		counts[tr.Jobs[i].User]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	observed := float64(top) / float64(tr.Len())
	n := len(counts)
	if n < 2 {
		return 1.05
	}
	lo, hi := 0.5, 2.5
	for iter := 0; iter < 50; iter++ {
		s := (lo + hi) / 2
		if zipfTopShare(n, s) < observed {
			lo = s
		} else {
			hi = s
		}
	}
	return (lo + hi) / 2
}

func zipfTopShare(n int, s float64) float64 {
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += 1 / math.Pow(float64(r), s)
	}
	return 1 / sum
}

// fitTemplates estimates the per-user template count and selection skew
// from the observed group structure of heavy users.
func fitTemplates(tr *trace.Trace) (int, float64) {
	byUser := tr.JobsByUser()
	var groupCounts []float64
	var topShares []float64
	for _, u := range tr.TopUsersByJobCount(20) {
		idxs := byUser[u]
		if len(idxs) < 20 {
			continue
		}
		sizes := userGroupSizesForFit(tr, idxs)
		if len(sizes) == 0 {
			continue
		}
		groupCounts = append(groupCounts, float64(len(sizes)))
		max := 0
		for _, s := range sizes {
			if s > max {
				max = s
			}
		}
		topShares = append(topShares, float64(max)/float64(len(idxs)))
	}
	templates := int(stats.Median(groupCounts))
	if templates < 3 {
		templates = 3
	}
	if templates > 80 {
		templates = 80
	}
	topShare := stats.Median(topShares)
	if topShare <= 0 {
		return templates, 1.4
	}
	lo, hi := 0.6, 3.0
	for iter := 0; iter < 50; iter++ {
		s := (lo + hi) / 2
		if zipfTopShare(templates, s) < topShare {
			lo = s
		} else {
			hi = s
		}
	}
	return templates, (lo + hi) / 2
}

// userGroupSizesForFit mirrors the Figure 8 grouping (exact procs, runtime
// within 10% of the running group mean).
func userGroupSizesForFit(tr *trace.Trace, idxs []int) []int {
	byProcs := map[int][]float64{}
	for _, i := range idxs {
		byProcs[tr.Jobs[i].Procs] = append(byProcs[tr.Jobs[i].Procs], tr.Jobs[i].Run)
	}
	var sizes []int
	for _, runs := range byProcs {
		sort.Float64s(runs)
		i := 0
		for i < len(runs) {
			mean := runs[i]
			n := 1
			j := i + 1
			for j < len(runs) && math.Abs(runs[j]-mean) <= 0.1*mean {
				mean = (mean*float64(n) + runs[j]) / float64(n+1)
				n++
				j++
			}
			sizes = append(sizes, n)
			i = j
		}
	}
	return sizes
}

// fitSizes builds the empirical request-size distribution (top 24 values).
func fitSizes(tr *trace.Trace) ([]int, []float64) {
	counts := map[int]int{}
	for i := range tr.Jobs {
		counts[tr.Jobs[i].Procs]++
	}
	type kv struct {
		procs, n int
	}
	all := make([]kv, 0, len(counts))
	for p, n := range counts {
		all = append(all, kv{p, n})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].n > all[b].n })
	if len(all) > 24 {
		all = all[:24]
	}
	sort.Slice(all, func(a, b int) bool { return all[a].procs < all[b].procs })
	choices := make([]int, len(all))
	weights := make([]float64, len(all))
	for i, e := range all {
		choices[i] = e.procs
		weights[i] = float64(e.n)
	}
	return choices, weights
}

// fitRuntime fits the main log-normal body and the >1-day tail. It targets
// the PASSED jobs' runtimes (failed/killed truncations are re-applied by
// the generator's own status model).
func fitRuntime(p *Profile, tr *trace.Trace) {
	var body []float64
	tail := 0
	total := 0
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Status != trace.Passed {
			continue
		}
		total++
		if j.Run > 86400 {
			tail++
		} else if j.Run > 0 {
			body = append(body, math.Log(j.Run))
		}
	}
	if len(body) < 10 {
		// degenerate: fall back to all runtimes
		for i := range tr.Jobs {
			if tr.Jobs[i].Run > 0 {
				body = append(body, math.Log(tr.Jobs[i].Run))
			}
		}
	}
	mu := stats.Mean(body)
	sigma := stats.Stddev(body)
	if sigma < 0.2 {
		sigma = 0.2
	}
	p.RuntimeMedian = dist.Clamped{
		S:  dist.LogNormal{Mu: mu, Sigma: sigma},
		Lo: 1, Hi: 5e6,
	}
	if total > 0 && tail > 0 {
		p.RuntimeTailWeight = float64(tail) / float64(total)
		p.RuntimeTail = dist.Clamped{
			S:  dist.Pareto{Xm: 86400, Alpha: 1.4},
			Lo: 86400, Hi: 5e6,
		}
	}
	p.IntraTemplateSigma = 0.06
}

// fitFailures measures per-length fail/kill rates and walltime behavior.
func fitFailures(p *Profile, tr *trace.Trace) {
	var tot, fail, kill [3]float64
	wallRatios := []float64{}
	killedAtWall, killed := 0, 0
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		c := lengthCategory(j.Run)
		tot[c]++
		switch j.Status {
		case trace.Failed:
			fail[c]++
		case trace.Killed:
			kill[c]++
			killed++
			if j.Walltime > 0 && j.Run >= j.Walltime*0.999 {
				killedAtWall++
			}
		}
		if j.Walltime > 0 && j.Run > 0 {
			wallRatios = append(wallRatios, j.Walltime/j.Run)
		}
	}
	for c := 0; c < 3; c++ {
		if tot[c] > 0 {
			p.FailByLength[c] = fail[c] / tot[c]
			p.KillByLength[c] = kill[c] / tot[c]
		}
	}
	if len(wallRatios) > 10 {
		p.WalltimeFactorLo = stats.Quantile(wallRatios, 0.25)
		p.WalltimeFactorHi = stats.Quantile(wallRatios, 0.9)
		if p.WalltimeFactorLo < 1 {
			p.WalltimeFactorLo = 1
		}
		if p.WalltimeFactorHi <= p.WalltimeFactorLo {
			p.WalltimeFactorHi = p.WalltimeFactorLo + 0.2
		}
	}
	if killed > 0 {
		p.WalltimeKillFrac = float64(killedAtWall) / float64(killed)
	}
	p.UserFailSigma = 0.3
	if tr.System.Kind == trace.DL {
		p.SizeFailBoost = [3]float64{1.0, 1.3, 1.8}
	}
}

// fitAdaptation estimates queue-adaptive strengths from the short-vs-long
// queue-bucket contrasts in the observed waits.
func fitAdaptation(p *Profile, tr *trace.Trace) {
	q := queueLengthsForFit(tr)
	maxQ := 0
	for _, v := range q {
		if v > maxQ {
			maxQ = v
		}
	}
	p.QueueScale = float64(maxQ) / 2
	if p.QueueScale < 4 {
		p.QueueScale = 4
	}
	if maxQ == 0 {
		return
	}
	minProcs := tr.Jobs[0].Procs
	for i := range tr.Jobs {
		if tr.Jobs[i].Procs < minProcs {
			minProcs = tr.Jobs[i].Procs
		}
	}
	var loMin, loTot, hiMin, hiTot float64
	var loRuns, hiRuns []float64
	for i := range tr.Jobs {
		frac := float64(q[i]) / float64(maxQ)
		switch {
		case frac <= 1.0/3:
			loTot++
			if tr.Jobs[i].Procs == minProcs {
				loMin++
			}
			loRuns = append(loRuns, tr.Jobs[i].Run)
		case frac > 2.0/3:
			hiTot++
			if tr.Jobs[i].Procs == minProcs {
				hiMin++
			}
			hiRuns = append(hiRuns, tr.Jobs[i].Run)
		}
	}
	if loTot > 20 && hiTot > 20 {
		delta := hiMin/hiTot - loMin/loTot
		if delta > 0 {
			p.SizeAdapt = math.Min(1, 2*delta)
		}
		loMed, hiMed := stats.Median(loRuns), stats.Median(hiRuns)
		if tr.System.Kind == trace.DL && loMed > 0 && hiMed < loMed {
			// invert run *= 0.05^(adapt * 1) at full pressure
			ratio := hiMed / loMed
			p.RuntimeAdapt = math.Min(1, math.Log(ratio)/math.Log(0.05))
		}
	}
}

// queueLengthsForFit reconstructs queue lengths from recorded waits.
func queueLengthsForFit(tr *trace.Trace) []int {
	starts := make([]float64, 0, 64)
	out := make([]int, tr.Len())
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		w := 0
		for _, s := range starts {
			if s > j.Submit {
				starts[w] = s
				w++
			}
		}
		starts = starts[:w]
		out[i] = len(starts)
		if j.Wait >= 0 {
			starts = append(starts, j.Start())
		}
	}
	return out
}

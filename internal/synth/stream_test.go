package synth

import (
	"io"
	"testing"
)

// TestStreamMatchesGenerate: the streaming generator must emit exactly the
// jobs Generate produces, in order, with the same System — for every
// verification profile (single/multi-VC, bursty) and a DL profile with
// adaptive behavior. Generate is implemented as a drain of Stream, so this
// pins the drain (ordering, Wait fill, ID density) rather than two
// implementations against each other.
func TestStreamMatchesGenerate(t *testing.T) {
	profiles := append(VerifyProfiles(2), Philly(0.5))
	for _, p := range profiles {
		want, err := p.Generate(11)
		if err != nil {
			t.Fatalf("%s: %v", p.Sys.Name, err)
		}
		s, err := p.Stream(11)
		if err != nil {
			t.Fatalf("%s: %v", p.Sys.Name, err)
		}
		if s.System() != want.System {
			t.Fatalf("%s: system %+v want %+v", p.Sys.Name, s.System(), want.System)
		}
		i := 0
		for {
			j, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: job %d: %v", p.Sys.Name, i, err)
			}
			if i >= want.Len() {
				t.Fatalf("%s: stream emitted more than %d jobs", p.Sys.Name, want.Len())
			}
			if j != want.Jobs[i] {
				t.Fatalf("%s: job %d:\n  stream:   %+v\n  generate: %+v", p.Sys.Name, i, j, want.Jobs[i])
			}
			i++
		}
		if i != want.Len() {
			t.Fatalf("%s: stream emitted %d jobs, Generate %d", p.Sys.Name, i, want.Len())
		}
		// EOF is sticky.
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("%s: EOF not sticky: %v", p.Sys.Name, err)
		}
	}
}

// TestStreamBufferBounded: the emission buffer tracks the shadow backlog,
// not the trace length — it must stay far below the total job count.
func TestStreamBufferBounded(t *testing.T) {
	p := VerifyHPC(4)
	s, err := p.Stream(3)
	if err != nil {
		t.Fatal(err)
	}
	n, peak := 0, 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if w := len(s.buf) - s.head; w > peak {
			peak = w
		}
	}
	if n == 0 {
		t.Fatal("stream produced no jobs")
	}
	if peak >= n/2 {
		t.Fatalf("buffer peak %d of %d jobs: not O(backlog)", peak, n)
	}
}

// TestStreamValidates: an invalid profile fails at construction, like
// Generate.
func TestStreamValidates(t *testing.T) {
	p := VerifyHPC(1)
	p.Users = 0
	if _, err := p.Stream(1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

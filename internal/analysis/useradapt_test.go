package analysis

import (
	"testing"

	"crosssched/internal/trace"
)

func TestUserAdaptationEmpty(t *testing.T) {
	tr := trace.New(trace.System{Name: "X", TotalCores: 10})
	out := AnalyzeUserAdaptation(tr, 5, 10)
	if len(out.Users) != 0 || out.SizeAdaptShare != 0 {
		t.Fatal("empty trace should yield an empty report")
	}
}

func TestUserAdaptationDetectsShrinking(t *testing.T) {
	// One user: under no queue submits 10-core 1000s jobs; under deep
	// queue submits 1-core 10s jobs.
	tr := trace.New(trace.System{Name: "X", Kind: trace.HPC, TotalCores: 100})
	// Phase 1: idle system, big jobs.
	for i := 0; i < 15; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i * 2000), Wait: 0, Run: 1000, Procs: 10, VC: -1,
		})
	}
	// Phase 2: a backlog (jobs submitted earlier still waiting), small jobs.
	base := 40000.0
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{ // backlog fillers from user 1
			User: 1, Submit: base + float64(i), Wait: 50000, Run: 10, Procs: 50, VC: -1,
		})
	}
	for i := 0; i < 15; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: base + 100 + float64(i*10), Wait: 5000, Run: 10, Procs: 1, VC: -1,
		})
	}
	tr.SortBySubmit()
	out := AnalyzeUserAdaptation(tr, 5, 20)
	if len(out.Users) == 0 {
		t.Fatal("no users qualified")
	}
	var u0 *UserAdaptationProfile
	for i := range out.Users {
		if out.Users[i].User == 0 {
			u0 = &out.Users[i]
		}
	}
	if u0 == nil {
		t.Fatal("user 0 missing")
	}
	if u0.SizeCorr >= 0 {
		t.Fatalf("user 0 size correlation %v should be negative", u0.SizeCorr)
	}
	if u0.RuntimeCorr >= 0 {
		t.Fatalf("user 0 runtime correlation %v should be negative", u0.RuntimeCorr)
	}
	if out.SizeAdaptShare == 0 {
		t.Fatal("size adapt share should count user 0")
	}
}

func TestUserAdaptationSkipsConstantQueue(t *testing.T) {
	tr := trace.New(trace.System{Name: "X", Kind: trace.HPC, TotalCores: 100})
	for i := 0; i < 30; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i * 1000), Wait: 0, Run: 10, Procs: 1, VC: -1,
		})
	}
	tr.SortBySubmit()
	out := AnalyzeUserAdaptation(tr, 5, 10)
	if len(out.Users) != 0 {
		t.Fatalf("constant-queue user should be skipped: %+v", out.Users)
	}
}

package analysis_test

import (
	"fmt"

	"crosssched/internal/analysis"
	"crosssched/internal/trace"
)

// ExampleClassifySize shows the paper's dual size conventions: relative to
// the machine on HPC, absolute GPU counts on DL clusters.
func ExampleClassifySize() {
	hpc := trace.System{Kind: trace.HPC, TotalCores: 1000}
	dl := trace.System{Kind: trace.DL, TotalCores: 1000}
	fmt.Println(analysis.ClassifySize(hpc, 50))  // 5% of the machine
	fmt.Println(analysis.ClassifySize(hpc, 500)) // 50% of the machine
	fmt.Println(analysis.ClassifySize(dl, 1))    // one GPU
	fmt.Println(analysis.ClassifySize(dl, 50))   // >8 GPUs
	// Output:
	// small
	// large
	// small
	// large
}

// ExampleClassifyLength shows the shared runtime classes.
func ExampleClassifyLength() {
	fmt.Println(analysis.ClassifyLength(60))        // a minute
	fmt.Println(analysis.ClassifyLength(7200))      // two hours
	fmt.Println(analysis.ClassifyLength(2 * 86400)) // two days
	// Output:
	// short
	// middle
	// long
}

// ExampleAnalyzeCoreHours computes the Figure 2 domination shares.
func ExampleAnalyzeCoreHours() {
	tr := trace.New(trace.System{Name: "demo", Kind: trace.HPC, TotalCores: 100})
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Run: 7200, Procs: 50, VC: -1}, // large-ish, middle length
		{User: 0, Submit: 1, Run: 60, Procs: 1, VC: -1},    // small, short
	}
	tr.SortBySubmit()
	ch := analysis.AnalyzeCoreHours(tr)
	fmt.Println(ch.DominantSize(), ch.DominantLength())
	// Output:
	// large middle
}

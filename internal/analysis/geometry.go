package analysis

import (
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// Geometry is the Figure 1 data for one system: runtime, arrival, and
// resource-allocation distributions.
type Geometry struct {
	System string

	RuntimeCDF     *stats.ECDF
	RuntimeViolin  stats.Violin
	RuntimeSummary stats.Summary

	IntervalCDF     *stats.ECDF
	IntervalSummary stats.Summary
	HourlyArrivals  [24]int
	DiurnalRatio    float64

	CoresCDF *stats.ECDF
	// CoresPctCDF is the CDF over requested cores as a percentage of the
	// machine (Figure 1(c) bottom).
	CoresPctCDF  *stats.ECDF
	CoresSummary stats.Summary
}

// AnalyzeGeometry computes the Figure 1 panels for a trace.
func AnalyzeGeometry(tr *trace.Trace) Geometry {
	g := Geometry{System: tr.System.Name}
	rt := tr.Runtimes()
	g.RuntimeCDF = stats.NewECDF(rt)
	g.RuntimeViolin = stats.NewViolin(rt, 120, true)
	g.RuntimeSummary = stats.Summarize(rt)

	iv := tr.ArrivalIntervals()
	g.IntervalCDF = stats.NewECDF(iv)
	g.IntervalSummary = stats.Summarize(iv)
	g.HourlyArrivals = stats.HourlyCounts(tr.Submits(), tr.System.StartHour)
	g.DiurnalRatio = stats.MaxMinRatio(g.HourlyArrivals)

	procs := tr.Procs()
	g.CoresCDF = stats.NewECDF(procs)
	pct := make([]float64, len(procs))
	for i, p := range procs {
		pct[i] = 100 * p / float64(tr.System.TotalCores)
	}
	g.CoresPctCDF = stats.NewECDF(pct)
	g.CoresSummary = stats.Summarize(procs)
	return g
}

// CoreHourShares is the Figure 2 data: the share of total core hours
// consumed by each size class and each length class.
type CoreHourShares struct {
	System   string
	Total    float64 // total core hours
	BySize   [3]float64
	ByLength [3]float64
	// Job-count shares for the same classes, for count-vs-consumption
	// contrasts.
	CountBySize   [3]float64
	CountByLength [3]float64
}

// AnalyzeCoreHours computes the Figure 2 shares.
func AnalyzeCoreHours(tr *trace.Trace) CoreHourShares {
	out := CoreHourShares{System: tr.System.Name}
	if tr.Len() == 0 {
		return out
	}
	var chSize, chLen [3]float64
	var nSize, nLen [3]float64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		ch := j.CoreHours()
		s := ClassifySize(tr.System, j.Procs)
		l := ClassifyLength(j.Run)
		chSize[s] += ch
		chLen[l] += ch
		nSize[s]++
		nLen[l]++
		out.Total += ch
	}
	n := float64(tr.Len())
	for i := 0; i < 3; i++ {
		if out.Total > 0 {
			out.BySize[i] = chSize[i] / out.Total
			out.ByLength[i] = chLen[i] / out.Total
		}
		out.CountBySize[i] = nSize[i] / n
		out.CountByLength[i] = nLen[i] / n
	}
	return out
}

// DominantSize returns the size class with the largest core-hour share.
func (c CoreHourShares) DominantSize() SizeCategory {
	best := SizeSmall
	for i := SizeMiddle; i <= SizeLarge; i++ {
		if c.BySize[i] > c.BySize[best] {
			best = i
		}
	}
	return best
}

// DominantLength returns the length class with the largest core-hour share.
func (c CoreHourShares) DominantLength() LengthCategory {
	best := LengthShort
	for i := LengthMiddle; i <= LengthLong; i++ {
		if c.ByLength[i] > c.ByLength[best] {
			best = i
		}
	}
	return best
}

package analysis

import (
	"math"
	"sort"

	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// UserGroups is the Figure 8 data: how much of each user's submissions are
// covered by their top-k resource-configuration groups, averaged over the
// heaviest users. Coverage[k-1] is cumulative through the k-th group.
type UserGroups struct {
	System   string
	Coverage []float64 // cumulative coverage through group 1..K
	Users    int       // users included in the average
}

// AnalyzeUserGroups computes Figure 8 for the top maxUsers users with at
// least minJobs submissions, using the paper's grouping rule: identical
// requested cores, runtimes within 10% of the group mean.
func AnalyzeUserGroups(tr *trace.Trace, topK, maxUsers, minJobs int) UserGroups {
	out := UserGroups{System: tr.System.Name, Coverage: make([]float64, topK)}
	byUser := tr.JobsByUser()
	users := tr.TopUsersByJobCount(maxUsers)
	counted := 0
	for _, u := range users {
		idxs := byUser[u]
		if len(idxs) < minJobs {
			continue
		}
		sizes := userGroupSizes(tr, idxs)
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		cum := 0
		for k := 0; k < topK; k++ {
			if k < len(sizes) {
				cum += sizes[k]
			}
			out.Coverage[k] += float64(cum) / float64(len(idxs))
		}
		counted++
	}
	if counted > 0 {
		for k := range out.Coverage {
			out.Coverage[k] /= float64(counted)
		}
	}
	out.Users = counted
	return out
}

// userGroupSizes clusters one user's jobs into resource-configuration
// groups (exact procs; runtime within 10% of the group's running mean).
func userGroupSizes(tr *trace.Trace, idxs []int) []int {
	byProcs := map[int][]float64{}
	for _, i := range idxs {
		byProcs[tr.Jobs[i].Procs] = append(byProcs[tr.Jobs[i].Procs], tr.Jobs[i].Run)
	}
	var sizes []int
	for _, runs := range byProcs {
		sort.Float64s(runs)
		i := 0
		for i < len(runs) {
			mean := runs[i]
			n := 1
			j := i + 1
			for j < len(runs) && math.Abs(runs[j]-mean) <= 0.1*mean {
				mean = (mean*float64(n) + runs[j]) / float64(n+1)
				n++
				j++
			}
			sizes = append(sizes, n)
			i = j
		}
	}
	return sizes
}

// QueueLengths reconstructs the queue length observed at each submission
// from the recorded waits: the number of jobs submitted earlier that had
// not yet started. Requires waits to be present (>= 0).
func QueueLengths(tr *trace.Trace) []int {
	starts := make([]float64, 0, 64)
	out := make([]int, tr.Len())
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		w := 0
		for _, s := range starts {
			if s > j.Submit {
				starts[w] = s
				w++
			}
		}
		starts = starts[:w]
		out[i] = len(starts)
		starts = append(starts, j.Start())
	}
	return out
}

// QueueBucket indexes the paper's queue-pressure classes (Figure 9):
// short (<Q/3), middle (Q/3..2Q/3), long (>2Q/3) where Q is the maximum
// observed queue length.
type QueueBucket int

// Queue bucket order: Short, Middle, Long.
const (
	QueueShort QueueBucket = iota
	QueueMiddle
	QueueLong
)

// QueueBucketNames are the display labels.
var QueueBucketNames = [3]string{"shortQ", "middleQ", "longQ"}

// QueueBehavior is the Figures 9-10 data: per queue bucket, the request
// size composition (including the "Minimal" class) and runtime statistics.
type QueueBehavior struct {
	System   string
	MaxQueue int
	// SizeShare[b] = [minimal, small, middle, large] request shares in
	// queue bucket b. "Minimal" jobs (1 core/GPU) are excluded from the
	// small class to match the paper's fourth category.
	SizeShare [3][4]float64
	// MedianRuntime[b] is the median runtime submitted in bucket b;
	// MinimalRuntimeShare[b] is the share of sub-minute jobs.
	MedianRuntime       [3]float64
	MinimalRuntimeShare [3]float64
	// Counts per bucket.
	Counts [3]int
}

// AnalyzeQueueBehavior computes Figures 9-10 for a trace with waits.
func AnalyzeQueueBehavior(tr *trace.Trace) QueueBehavior {
	out := QueueBehavior{System: tr.System.Name}
	if tr.Len() == 0 {
		return out
	}
	q := QueueLengths(tr)
	maxQ := 0
	for _, v := range q {
		if v > maxQ {
			maxQ = v
		}
	}
	out.MaxQueue = maxQ
	if maxQ == 0 {
		// no queueing at all: everything lands in the short bucket
		maxQ = 1
	}
	minimal := MinimalProcs(tr)
	var runs [3][]float64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		b := QueueShort
		frac := float64(q[i]) / float64(maxQ)
		switch {
		case frac > 2.0/3:
			b = QueueLong
		case frac > 1.0/3:
			b = QueueMiddle
		}
		out.Counts[b]++
		if j.Procs == minimal {
			out.SizeShare[b][0]++
		} else {
			out.SizeShare[b][int(ClassifySize(tr.System, j.Procs))+1]++
		}
		runs[b] = append(runs[b], j.Run)
		if j.Run <= 60 {
			out.MinimalRuntimeShare[b]++
		}
	}
	for b := 0; b < 3; b++ {
		if out.Counts[b] > 0 {
			n := float64(out.Counts[b])
			for c := 0; c < 4; c++ {
				out.SizeShare[b][c] /= n
			}
			out.MinimalRuntimeShare[b] /= n
		}
		out.MedianRuntime[b] = stats.Median(runs[b])
	}
	return out
}

// UserStatusRuntimes is the Figure 11 data: per heavy user, the runtime
// distribution split by final job status.
type UserStatusRuntimes struct {
	System string
	Users  []UserStatusProfile
}

// UserStatusProfile is one user's runtime-by-status summary.
type UserStatusProfile struct {
	User    int
	Jobs    int
	Violins [3]stats.Violin // indexed by trace.Status
	Medians [3]float64
	Counts  [3]int
}

// AnalyzeUserStatusRuntimes computes Figure 11 for the topK heaviest users.
func AnalyzeUserStatusRuntimes(tr *trace.Trace, topK int) UserStatusRuntimes {
	out := UserStatusRuntimes{System: tr.System.Name}
	byUser := tr.JobsByUser()
	for _, u := range tr.TopUsersByJobCount(topK) {
		prof := UserStatusProfile{User: u}
		var runs [3][]float64
		for _, i := range byUser[u] {
			j := &tr.Jobs[i]
			runs[j.Status] = append(runs[j.Status], j.Run)
			prof.Jobs++
		}
		for st := 0; st < 3; st++ {
			prof.Violins[st] = stats.NewViolin(runs[st], 80, true)
			prof.Medians[st] = stats.Median(runs[st])
			prof.Counts[st] = len(runs[st])
		}
		out.Users = append(out.Users, prof)
	}
	return out
}

// StatusSeparation quantifies how distinguishable a user's runtime
// distributions are across final statuses: the widest pairwise |log-median
// gap| in decades (typically Failed-vs-Passed — failures die early). Large
// separations are what make elapsed-time prediction work (Section VI-A).
func (p UserStatusProfile) StatusSeparation() float64 {
	best := 0.0
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			ma, mb := p.Medians[a], p.Medians[b]
			if ma <= 0 || mb <= 0 {
				continue
			}
			if gap := math.Abs(math.Log10(ma) - math.Log10(mb)); gap > best {
				best = gap
			}
		}
	}
	return best
}

package analysis

import (
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// UserAdaptation refines Figures 9-10 to the per-user level the paper's
// narrative uses ("users tend to submit jobs needing less resources"):
// for each heavy user, the rank correlation between the queue length they
// observed at submission and the size/runtime they submitted.
type UserAdaptation struct {
	System string
	// Users holds one entry per qualifying heavy user.
	Users []UserAdaptationProfile
	// SizeAdaptShare is the fraction of users with a negative
	// size-vs-queue correlation (smaller requests under pressure).
	SizeAdaptShare float64
	// RuntimeAdaptShare is the fraction with a negative runtime-vs-queue
	// correlation (shorter jobs under pressure).
	RuntimeAdaptShare float64
}

// UserAdaptationProfile is one user's adaptation signature.
type UserAdaptationProfile struct {
	User int
	Jobs int
	// SizeCorr is Spearman(queueLen, procs): negative = adapts size.
	SizeCorr float64
	// RuntimeCorr is Spearman(queueLen, runtime): negative = adapts
	// runtime.
	RuntimeCorr float64
}

// AnalyzeUserAdaptation computes per-user adaptation for the topK heaviest
// users with at least minJobs submissions spanning some queue variation.
func AnalyzeUserAdaptation(tr *trace.Trace, topK, minJobs int) UserAdaptation {
	out := UserAdaptation{System: tr.System.Name}
	if tr.Len() == 0 {
		return out
	}
	q := QueueLengths(tr)
	byUser := tr.JobsByUser()
	var sizeAdapt, runtimeAdapt, counted int
	for _, u := range tr.TopUsersByJobCount(topK) {
		idxs := byUser[u]
		if len(idxs) < minJobs {
			continue
		}
		ql := make([]float64, 0, len(idxs))
		sizes := make([]float64, 0, len(idxs))
		runs := make([]float64, 0, len(idxs))
		for _, i := range idxs {
			ql = append(ql, float64(q[i]))
			sizes = append(sizes, float64(tr.Jobs[i].Procs))
			runs = append(runs, tr.Jobs[i].Run)
		}
		if stats.Stddev(ql) == 0 {
			continue // user never saw queue variation; correlation undefined
		}
		p := UserAdaptationProfile{
			User:        u,
			Jobs:        len(idxs),
			SizeCorr:    stats.Spearman(ql, sizes),
			RuntimeCorr: stats.Spearman(ql, runs),
		}
		out.Users = append(out.Users, p)
		counted++
		if p.SizeCorr < 0 {
			sizeAdapt++
		}
		if p.RuntimeCorr < 0 {
			runtimeAdapt++
		}
	}
	if counted > 0 {
		out.SizeAdaptShare = float64(sizeAdapt) / float64(counted)
		out.RuntimeAdaptShare = float64(runtimeAdapt) / float64(counted)
	}
	return out
}

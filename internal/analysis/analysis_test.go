package analysis

import (
	"math"
	"testing"

	"crosssched/internal/trace"
)

func sys(kind trace.SystemKind, cores int) trace.System {
	return trace.System{Name: "T", Kind: kind, TotalCores: cores}
}

func TestClassifySizeHPC(t *testing.T) {
	s := sys(trace.HPC, 1000)
	cases := []struct {
		procs int
		want  SizeCategory
	}{
		{50, SizeSmall}, {99, SizeSmall}, {100, SizeMiddle},
		{300, SizeMiddle}, {301, SizeLarge}, {1000, SizeLarge},
	}
	for _, c := range cases {
		if got := ClassifySize(s, c.procs); got != c.want {
			t.Fatalf("ClassifySize(HPC, %d) = %v want %v", c.procs, got, c.want)
		}
	}
}

func TestClassifySizeDL(t *testing.T) {
	s := sys(trace.DL, 2000)
	cases := []struct {
		procs int
		want  SizeCategory
	}{
		{1, SizeSmall}, {2, SizeMiddle}, {8, SizeMiddle}, {9, SizeLarge}, {2000, SizeLarge},
	}
	for _, c := range cases {
		if got := ClassifySize(s, c.procs); got != c.want {
			t.Fatalf("ClassifySize(DL, %d) = %v want %v", c.procs, got, c.want)
		}
	}
}

func TestClassifySizeHybridUsesRelative(t *testing.T) {
	s := sys(trace.Hybrid, 1000)
	if ClassifySize(s, 1) != SizeSmall || ClassifySize(s, 500) != SizeLarge {
		t.Fatal("hybrid should follow the relative convention")
	}
}

func TestClassifyLength(t *testing.T) {
	cases := []struct {
		run  float64
		want LengthCategory
	}{
		{0, LengthShort}, {3599, LengthShort}, {3600, LengthMiddle},
		{86400, LengthMiddle}, {86401, LengthLong},
	}
	for _, c := range cases {
		if got := ClassifyLength(c.run); got != c.want {
			t.Fatalf("ClassifyLength(%v) = %v want %v", c.run, got, c.want)
		}
	}
}

// testTrace builds a deterministic mini-trace with known shares.
func testTrace() *trace.Trace {
	tr := trace.New(trace.System{Name: "X", Kind: trace.HPC, TotalCores: 1000, StartHour: 0})
	tr.Jobs = []trace.Job{
		// small short passed: 50 cores, 600s
		{User: 0, Submit: 0, Wait: 10, Run: 600, Walltime: 1200, Procs: 50, VC: -1, Status: trace.Passed},
		// small middle killed: 50 cores, 7200s
		{User: 0, Submit: 100, Wait: 20, Run: 7200, Walltime: 7200, Procs: 50, VC: -1, Status: trace.Killed},
		// middle short failed: 200 cores, 60s
		{User: 1, Submit: 200, Wait: 0, Run: 60, Walltime: 3600, Procs: 200, VC: -1, Status: trace.Failed},
		// large long passed: 400 cores, 100000s
		{User: 1, Submit: 3600, Wait: 50, Run: 100000, Walltime: 200000, Procs: 400, VC: -1, Status: trace.Passed},
	}
	tr.SortBySubmit()
	return tr
}

func TestAnalyzeGeometry(t *testing.T) {
	g := AnalyzeGeometry(testTrace())
	if g.RuntimeSummary.N != 4 {
		t.Fatalf("runtime N %d", g.RuntimeSummary.N)
	}
	if g.RuntimeCDF.At(600) != 0.5 {
		t.Fatalf("runtime CDF wrong: %v", g.RuntimeCDF.At(600))
	}
	if g.IntervalSummary.N != 3 {
		t.Fatalf("interval N %d", g.IntervalSummary.N)
	}
	// hourly: submits at 0,100,200 in hour 0; 3600 in hour 1
	if g.HourlyArrivals[0] != 3 || g.HourlyArrivals[1] != 1 {
		t.Fatalf("hourly arrivals %v", g.HourlyArrivals)
	}
	if g.CoresSummary.Max != 400 {
		t.Fatalf("cores max %v", g.CoresSummary.Max)
	}
	// percentage CDF: 400/1000 = 40%
	if got := g.CoresPctCDF.At(39.9); got != 0.75 {
		t.Fatalf("pct CDF %v want 0.75", got)
	}
}

func TestAnalyzeCoreHours(t *testing.T) {
	ch := AnalyzeCoreHours(testTrace())
	// core hours: j0 50*600/3600=8.33, j1 50*7200/3600=100,
	// j2 200*60/3600=3.33, j3 400*100000/3600=11111.1
	wantTotal := (50*600 + 50*7200 + 200*60 + 400*100000) / 3600.0
	if math.Abs(ch.Total-wantTotal) > 1e-6 {
		t.Fatalf("total CH %v want %v", ch.Total, wantTotal)
	}
	// j0,j1 small; j2 middle; j3 large
	if ch.DominantSize() != SizeLarge {
		t.Fatalf("dominant size %v want large", ch.DominantSize())
	}
	if ch.DominantLength() != LengthLong {
		t.Fatalf("dominant length %v want long", ch.DominantLength())
	}
	if math.Abs(ch.CountBySize[SizeSmall]-0.5) > 1e-12 {
		t.Fatalf("small count share %v want 0.5", ch.CountBySize[SizeSmall])
	}
	shareSum := ch.BySize[0] + ch.BySize[1] + ch.BySize[2]
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("size shares sum %v", shareSum)
	}
	empty := AnalyzeCoreHours(trace.New(sys(trace.HPC, 10)))
	if empty.Total != 0 {
		t.Fatal("empty trace CH should be 0")
	}
}

func TestAnalyzeScheduling(t *testing.T) {
	s := AnalyzeScheduling(testTrace())
	if s.WaitSummary.N != 4 {
		t.Fatalf("wait N %d", s.WaitSummary.N)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization %v", s.Utilization)
	}
	// turnaround = wait + run for each job
	if s.TurnaroundCDF.At(609) != 0.25 {
		t.Fatalf("turnaround CDF %v", s.TurnaroundCDF.At(609))
	}
	// wait by length: short jobs are j0(600s,10) and j2(60s,0) -> median 5
	if s.WaitByLength[LengthShort] != 5 {
		t.Fatalf("short wait median %v want 5", s.WaitByLength[LengthShort])
	}
	if s.WaitBySize[SizeLarge] != 50 {
		t.Fatalf("large wait median %v want 50", s.WaitBySize[SizeLarge])
	}
	degenerate := AnalyzeScheduling(trace.New(sys(trace.HPC, 10)))
	if degenerate.Utilization != 0 {
		t.Fatal("empty scheduling should be zeroed")
	}
}

func TestAnalyzeFailures(t *testing.T) {
	f := AnalyzeFailures(testTrace())
	if math.Abs(f.CountShare[trace.Passed]-0.5) > 1e-12 {
		t.Fatalf("pass share %v want 0.5", f.CountShare[trace.Passed])
	}
	if math.Abs(f.PassRate()-0.5) > 1e-12 {
		t.Fatal("PassRate mismatch")
	}
	sum := f.CoreHourShare[0] + f.CoreHourShare[1] + f.CoreHourShare[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("CH shares sum %v", sum)
	}
	if f.WastedCoreHourShare() <= 0 {
		t.Fatal("wasted share should be positive")
	}
	// size class small contains j0 (passed) and j1 (killed): 50/50
	if math.Abs(f.StatusBySize[SizeSmall][trace.Passed]-0.5) > 1e-12 {
		t.Fatalf("small pass rate %v want 0.5", f.StatusBySize[SizeSmall][trace.Passed])
	}
	if f.SizeCounts[SizeSmall] != 2 || f.LengthCounts[LengthLong] != 1 {
		t.Fatalf("class counts wrong: %v %v", f.SizeCounts, f.LengthCounts)
	}
	// long class is 100% passed in this toy trace
	if f.StatusByLength[LengthLong][trace.Passed] != 1 {
		t.Fatalf("long pass rate %v", f.StatusByLength[LengthLong][trace.Passed])
	}
}

func TestAnalyzeUserGroupsRepetition(t *testing.T) {
	// user 0 submits the same config 8 times plus 2 odd ones
	tr := trace.New(sys(trace.HPC, 1000))
	for i := 0; i < 8; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i), Wait: 0, Run: 100, Procs: 10, VC: -1,
		})
	}
	tr.Jobs = append(tr.Jobs,
		trace.Job{User: 0, Submit: 8, Wait: 0, Run: 5000, Procs: 10, VC: -1},
		trace.Job{User: 0, Submit: 9, Wait: 0, Run: 100, Procs: 99, VC: -1},
	)
	tr.SortBySubmit()
	g := AnalyzeUserGroups(tr, 10, 5, 5)
	if g.Users != 1 {
		t.Fatalf("users counted %d want 1", g.Users)
	}
	if math.Abs(g.Coverage[0]-0.8) > 1e-12 {
		t.Fatalf("top-1 coverage %v want 0.8", g.Coverage[0])
	}
	if math.Abs(g.Coverage[9]-1.0) > 1e-12 {
		t.Fatalf("top-10 coverage %v want 1.0", g.Coverage[9])
	}
	// coverage must be nondecreasing
	for k := 1; k < len(g.Coverage); k++ {
		if g.Coverage[k] < g.Coverage[k-1]-1e-12 {
			t.Fatal("coverage not monotone")
		}
	}
}

func TestUserGroupSizes10PercentRule(t *testing.T) {
	tr := trace.New(sys(trace.HPC, 1000))
	// runtimes 100 and 105 group together (within 10%); 200 does not
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Run: 100, Procs: 10, VC: -1},
		{User: 0, Submit: 1, Run: 105, Procs: 10, VC: -1},
		{User: 0, Submit: 2, Run: 200, Procs: 10, VC: -1},
		{User: 0, Submit: 3, Run: 100, Procs: 20, VC: -1}, // different procs
	}
	tr.SortBySubmit()
	sizes := userGroupSizes(tr, []int{0, 1, 2, 3})
	// expect groups: {100,105}, {200}, {100@20procs}
	if len(sizes) != 3 {
		t.Fatalf("groups %v want 3 groups", sizes)
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if max != 2 {
		t.Fatalf("largest group %d want 2", max)
	}
}

func TestQueueLengths(t *testing.T) {
	tr := trace.New(sys(trace.HPC, 100))
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 100, Run: 10, Procs: 1, VC: -1},  // starts at 100
		{User: 0, Submit: 10, Wait: 100, Run: 10, Procs: 1, VC: -1}, // sees 1 queued
		{User: 0, Submit: 20, Wait: 0, Run: 10, Procs: 1, VC: -1},   // sees 2 queued
		{User: 0, Submit: 200, Wait: 0, Run: 10, Procs: 1, VC: -1},  // all started
	}
	tr.SortBySubmit()
	q := QueueLengths(tr)
	want := []int{0, 1, 2, 0}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("queue lengths %v want %v", q, want)
		}
	}
}

func TestAnalyzeQueueBehavior(t *testing.T) {
	tr := trace.New(sys(trace.HPC, 100))
	// Build a congestion ramp: early jobs see no queue and are large;
	// later jobs see a deep queue and are minimal and short.
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i), Wait: 0, Run: 5000, Procs: 50, VC: -1,
		})
	}
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: 100 + float64(i), Wait: 10000, Run: 30, Procs: 1, VC: -1,
		})
	}
	tr.SortBySubmit()
	qb := AnalyzeQueueBehavior(tr)
	if qb.MaxQueue == 0 {
		t.Fatal("expected queueing")
	}
	// the long-queue bucket should be more minimal-heavy than short
	if qb.SizeShare[QueueLong][0] <= qb.SizeShare[QueueShort][0] {
		t.Fatalf("minimal share should grow with queue: %v vs %v",
			qb.SizeShare[QueueShort][0], qb.SizeShare[QueueLong][0])
	}
	if qb.MedianRuntime[QueueLong] >= qb.MedianRuntime[QueueShort] {
		t.Fatal("runtime under load should be shorter in this construction")
	}
	counts := qb.Counts[0] + qb.Counts[1] + qb.Counts[2]
	if counts != tr.Len() {
		t.Fatalf("bucket counts %d want %d", counts, tr.Len())
	}
}

func TestAnalyzeQueueBehaviorNoQueues(t *testing.T) {
	tr := trace.New(sys(trace.HPC, 100))
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 0, Run: 10, Procs: 1, VC: -1},
		{User: 0, Submit: 100, Wait: 0, Run: 10, Procs: 1, VC: -1},
	}
	tr.SortBySubmit()
	qb := AnalyzeQueueBehavior(tr)
	if qb.Counts[QueueShort] != 2 {
		t.Fatalf("no-queue trace should land in the short bucket: %v", qb.Counts)
	}
}

func TestAnalyzeUserStatusRuntimes(t *testing.T) {
	tr := trace.New(sys(trace.HPC, 100))
	// user 0: passed jobs ~100s, killed jobs ~10000s
	for i := 0; i < 20; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: float64(i), Wait: 0, Run: 100 + float64(i),
			Procs: 1, VC: -1, Status: trace.Passed,
		})
	}
	for i := 0; i < 10; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			User: 0, Submit: 100 + float64(i), Wait: 0, Run: 10000 + float64(i),
			Procs: 1, VC: -1, Status: trace.Killed,
		})
	}
	tr.SortBySubmit()
	r := AnalyzeUserStatusRuntimes(tr, 3)
	if len(r.Users) != 1 {
		t.Fatalf("users %d want 1", len(r.Users))
	}
	p := r.Users[0]
	if p.Counts[trace.Passed] != 20 || p.Counts[trace.Killed] != 10 {
		t.Fatalf("counts %v", p.Counts)
	}
	if p.Medians[trace.Killed] <= p.Medians[trace.Passed] {
		t.Fatal("killed median should exceed passed in this construction")
	}
	if p.StatusSeparation() < 1.5 {
		t.Fatalf("separation %v want ~2 decades", p.StatusSeparation())
	}
}

func TestMinimalProcs(t *testing.T) {
	tr := testTrace()
	if MinimalProcs(tr) != 50 {
		t.Fatalf("minimal procs %d want 50", MinimalProcs(tr))
	}
	if MinimalProcs(trace.New(sys(trace.HPC, 1))) != 0 {
		t.Fatal("empty trace minimal should be 0")
	}
}

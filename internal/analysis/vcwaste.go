package analysis

import (
	"sort"

	"crosssched/internal/trace"
)

// VCWaste quantifies the paper's Philly observation ("we do often find
// jobs are waiting on one virtual cluster while other virtual clusters are
// idle"): how much queue waiting happens while enough capacity for the
// waiting job sits idle in OTHER virtual clusters.
type VCWaste struct {
	System string
	VCs    int
	// PerVCUtil is each virtual cluster's core occupancy over the trace
	// window — the imbalance behind the waste.
	PerVCUtil []float64
	// StrandedWaitShare is the fraction of total wait seconds during
	// which another VC had >= the waiting job's request idle.
	StrandedWaitShare float64
	// StrandedJobShare is the fraction of waiting jobs that could have
	// started immediately on another VC at submission.
	StrandedJobShare float64
	// TotalWaitSeconds is the denominator for StrandedWaitShare.
	TotalWaitSeconds float64
}

// AnalyzeVCWaste computes cross-VC waste for a partitioned trace. Traces
// without virtual clusters return a zero report.
func AnalyzeVCWaste(tr *trace.Trace) VCWaste {
	out := VCWaste{System: tr.System.Name, VCs: tr.System.VirtualClusters}
	if tr.System.VirtualClusters < 2 || tr.Len() == 0 {
		return out
	}
	nVC := tr.System.VirtualClusters
	caps := make([]int, nVC)
	base := tr.System.TotalCores / nVC
	rem := tr.System.TotalCores % nVC
	for i := range caps {
		caps[i] = base
		if i < rem {
			caps[i]++
		}
	}

	// Build a per-VC busy-core timeline from starts/ends.
	type ev struct {
		t     float64
		delta int
		vc    int
	}
	var events []ev
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Wait < 0 || j.VC < 0 || j.VC >= nVC {
			continue
		}
		events = append(events,
			ev{t: j.Start(), delta: j.Procs, vc: j.VC},
			ev{t: j.End(), delta: -j.Procs, vc: j.VC})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].delta < events[b].delta
	})

	// busyAt answers "cores busy in VC v at time t" via a prefix sweep;
	// we evaluate queries in time order for O((E+Q) log) total.
	type query struct {
		t     float64
		job   int
		probe bool // true: submission probe; false: unused
	}
	var queries []query
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Wait > 0 && j.VC >= 0 && j.VC < nVC {
			queries = append(queries, query{t: j.Submit, job: i, probe: true})
		}
	}
	sort.Slice(queries, func(a, b int) bool { return queries[a].t < queries[b].t })

	busy := make([]int, nVC)
	eventIdx := 0
	var strandedJobs, waitingJobs int
	var strandedWait, totalWait float64
	for _, q := range queries {
		for eventIdx < len(events) && events[eventIdx].t <= q.t {
			busy[events[eventIdx].vc] += events[eventIdx].delta
			eventIdx++
		}
		j := &tr.Jobs[q.job]
		waitingJobs++
		totalWait += j.Wait
		for v := 0; v < nVC; v++ {
			if v == j.VC {
				continue
			}
			if caps[v]-busy[v] >= j.Procs {
				strandedJobs++
				strandedWait += j.Wait
				break
			}
		}
	}
	out.TotalWaitSeconds = totalWait
	if waitingJobs > 0 {
		out.StrandedJobShare = float64(strandedJobs) / float64(waitingJobs)
	}
	if totalWait > 0 {
		out.StrandedWaitShare = strandedWait / totalWait
	}

	// Per-VC utilization over the submission window.
	lo := tr.Jobs[0].Submit
	hi := tr.Jobs[tr.Len()-1].Submit
	if hi > lo {
		busySec := make([]float64, nVC)
		for i := range tr.Jobs {
			j := &tr.Jobs[i]
			if j.Wait < 0 || j.VC < 0 || j.VC >= nVC {
				continue
			}
			s, e := j.Start(), j.End()
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				busySec[j.VC] += (e - s) * float64(j.Procs)
			}
		}
		out.PerVCUtil = make([]float64, nVC)
		for v := 0; v < nVC; v++ {
			out.PerVCUtil[v] = busySec[v] / (float64(caps[v]) * (hi - lo))
		}
	}
	return out
}

package analysis

import (
	"math"
	"testing"

	"crosssched/internal/trace"
)

func TestVCWasteNoPartitions(t *testing.T) {
	tr := trace.New(trace.System{Name: "X", TotalCores: 100})
	tr.Jobs = []trace.Job{{User: 0, Submit: 0, Wait: 10, Run: 10, Procs: 1, VC: -1}}
	w := AnalyzeVCWaste(tr)
	if w.StrandedWaitShare != 0 || w.PerVCUtil != nil {
		t.Fatal("unpartitioned trace should return a zero report")
	}
}

func TestVCWasteStrandedJob(t *testing.T) {
	// Two VCs of 10 cores. VC0 is occupied by a long job; a VC0 job waits
	// while VC1 is completely idle -> it is stranded.
	tr := trace.New(trace.System{Name: "P", Kind: trace.DL, TotalCores: 20, VirtualClusters: 2})
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 0, Run: 1000, Procs: 10, VC: 0},
		{User: 1, Submit: 10, Wait: 990, Run: 50, Procs: 5, VC: 0}, // waits; VC1 idle
	}
	tr.SortBySubmit()
	w := AnalyzeVCWaste(tr)
	if w.StrandedJobShare != 1 {
		t.Fatalf("stranded job share %v want 1", w.StrandedJobShare)
	}
	if math.Abs(w.StrandedWaitShare-1) > 1e-12 {
		t.Fatalf("stranded wait share %v want 1", w.StrandedWaitShare)
	}
	if w.TotalWaitSeconds != 990 {
		t.Fatalf("total wait %v want 990", w.TotalWaitSeconds)
	}
}

func TestVCWasteNotStrandedWhenAllBusy(t *testing.T) {
	// Both VCs full: the waiting job could not have run anywhere.
	tr := trace.New(trace.System{Name: "P", Kind: trace.DL, TotalCores: 20, VirtualClusters: 2})
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 0, Run: 1000, Procs: 10, VC: 0},
		{User: 1, Submit: 0, Wait: 0, Run: 1000, Procs: 10, VC: 1},
		{User: 2, Submit: 10, Wait: 990, Run: 50, Procs: 5, VC: 0},
	}
	tr.SortBySubmit()
	w := AnalyzeVCWaste(tr)
	if w.StrandedJobShare != 0 {
		t.Fatalf("stranded job share %v want 0 (all VCs busy)", w.StrandedJobShare)
	}
}

func TestVCWastePerVCUtil(t *testing.T) {
	tr := trace.New(trace.System{Name: "P", Kind: trace.DL, TotalCores: 20, VirtualClusters: 2})
	// VC0 fully busy over the window, VC1 idle.
	tr.Jobs = []trace.Job{
		{User: 0, Submit: 0, Wait: 0, Run: 100, Procs: 10, VC: 0},
		{User: 1, Submit: 100, Wait: 0, Run: 1, Procs: 1, VC: 1},
	}
	tr.SortBySubmit()
	w := AnalyzeVCWaste(tr)
	if len(w.PerVCUtil) != 2 {
		t.Fatalf("per-VC util missing: %v", w.PerVCUtil)
	}
	if math.Abs(w.PerVCUtil[0]-1) > 1e-9 {
		t.Fatalf("VC0 util %v want ~1", w.PerVCUtil[0])
	}
	if w.PerVCUtil[1] > 0.05 {
		t.Fatalf("VC1 util %v want ~0", w.PerVCUtil[1])
	}
}

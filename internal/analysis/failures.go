package analysis

import (
	"crosssched/internal/trace"
)

// Failures is the Figures 6-7 data: status distributions by count and core
// hours, and status breakdowns by size and length class.
type Failures struct {
	System string

	// CountShare and CoreHourShare are indexed by trace.Status.
	CountShare    [3]float64
	CoreHourShare [3]float64

	// StatusBySize[s][st] is the share of jobs in size class s with
	// status st (each row sums to 1 when the class is populated).
	StatusBySize [3][3]float64
	// StatusByLength[l][st] likewise for length classes.
	StatusByLength [3][3]float64
	// SizeCounts/LengthCounts report class populations (for confidence).
	SizeCounts   [3]int
	LengthCounts [3]int
}

// AnalyzeFailures computes the Figures 6-7 panels.
func AnalyzeFailures(tr *trace.Trace) Failures {
	out := Failures{System: tr.System.Name}
	if tr.Len() == 0 {
		return out
	}
	var counts [3]float64
	var hours [3]float64
	totalCH := 0.0
	var bySize [3][3]float64
	var byLen [3][3]float64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		counts[j.Status]++
		ch := j.CoreHours()
		hours[j.Status] += ch
		totalCH += ch
		bySize[ClassifySize(tr.System, j.Procs)][j.Status]++
		byLen[ClassifyLength(j.Run)][j.Status]++
	}
	n := float64(tr.Len())
	for st := 0; st < 3; st++ {
		out.CountShare[st] = counts[st] / n
		if totalCH > 0 {
			out.CoreHourShare[st] = hours[st] / totalCH
		}
	}
	for c := 0; c < 3; c++ {
		var sTot, lTot float64
		for st := 0; st < 3; st++ {
			sTot += bySize[c][st]
			lTot += byLen[c][st]
		}
		out.SizeCounts[c] = int(sTot)
		out.LengthCounts[c] = int(lTot)
		for st := 0; st < 3; st++ {
			if sTot > 0 {
				out.StatusBySize[c][st] = bySize[c][st] / sTot
			}
			if lTot > 0 {
				out.StatusByLength[c][st] = byLen[c][st] / lTot
			}
		}
	}
	return out
}

// PassRate returns the overall fraction of Passed jobs.
func (f Failures) PassRate() float64 { return f.CountShare[trace.Passed] }

// WastedCoreHourShare returns the fraction of core hours spent on jobs
// that did not pass — the paper's headline waste number (e.g. 66% of
// Philly's GPU hours).
func (f Failures) WastedCoreHourShare() float64 {
	return f.CoreHourShare[trace.Failed] + f.CoreHourShare[trace.Killed]
}

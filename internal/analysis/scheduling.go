package analysis

import (
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// Scheduling is the Figures 3-5 data for one system: utilization, wait and
// turnaround distributions, and wait correlations with job geometry. It is
// computed from the waits recorded in the trace (what a real trace carries)
// — use internal/sim to re-schedule under different policies.
type Scheduling struct {
	System string

	// Utilization over the submission window (Figure 3), plus a per-day
	// utilization series for the time axis.
	Utilization float64
	DailyUtil   []float64

	WaitCDF           *stats.ECDF
	WaitSummary       stats.Summary
	TurnaroundCDF     *stats.ECDF
	TurnaroundSummary stats.Summary

	// Median wait by size class and by length class (Figure 5).
	WaitBySize   [3]float64
	WaitByLength [3]float64
}

// AnalyzeScheduling computes the Figures 3-5 panels.
func AnalyzeScheduling(tr *trace.Trace) Scheduling {
	out := Scheduling{System: tr.System.Name}
	if tr.Len() < 2 {
		return out
	}
	out.Utilization, out.DailyUtil = windowUtilization(tr)

	waits := tr.Waits()
	out.WaitCDF = stats.NewECDF(waits)
	out.WaitSummary = stats.Summarize(waits)

	turn := make([]float64, 0, tr.Len())
	for i := range tr.Jobs {
		if tr.Jobs[i].Wait >= 0 {
			turn = append(turn, tr.Jobs[i].Turnaround())
		}
	}
	out.TurnaroundCDF = stats.NewECDF(turn)
	out.TurnaroundSummary = stats.Summarize(turn)

	var bySize, byLen [3][]float64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Wait < 0 {
			continue
		}
		bySize[ClassifySize(tr.System, j.Procs)] = append(bySize[ClassifySize(tr.System, j.Procs)], j.Wait)
		byLen[ClassifyLength(j.Run)] = append(byLen[ClassifyLength(j.Run)], j.Wait)
	}
	for c := 0; c < 3; c++ {
		out.WaitBySize[c] = stats.Median(bySize[c])
		out.WaitByLength[c] = stats.Median(byLen[c])
	}
	return out
}

// windowUtilization computes core occupancy over the submission window
// [first submit, last submit], clipping each job's execution interval to
// the window, plus a per-day series.
func windowUtilization(tr *trace.Trace) (float64, []float64) {
	lo := tr.Jobs[0].Submit
	hi := tr.Jobs[tr.Len()-1].Submit
	if hi <= lo {
		return 0, nil
	}
	nDays := int((hi-lo)/86400) + 1
	dayBusy := make([]float64, nDays)
	busy := 0.0
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Wait < 0 {
			continue
		}
		s, e := j.Start(), j.End()
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e <= s {
			continue
		}
		busy += (e - s) * float64(j.Procs)
		// distribute into day buckets
		for d := int((s - lo) / 86400); d < nDays; d++ {
			dLo := lo + float64(d)*86400
			dHi := dLo + 86400
			if dLo >= e {
				break
			}
			ss, ee := s, e
			if ss < dLo {
				ss = dLo
			}
			if ee > dHi {
				ee = dHi
			}
			if ee > ss {
				dayBusy[d] += (ee - ss) * float64(j.Procs)
			}
		}
	}
	cap := float64(tr.System.TotalCores)
	util := busy / (cap * (hi - lo))
	daily := make([]float64, nDays)
	for d := range dayBusy {
		span := 86400.0
		if d == nDays-1 {
			span = hi - (lo + float64(d)*86400)
			if span <= 0 {
				span = 86400
			}
		}
		daily[d] = dayBusy[d] / (cap * span)
	}
	return util, daily
}

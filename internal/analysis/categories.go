// Package analysis implements the paper's cross-system characterization
// methodology (Sections III-V): job geometry analyses, core-hour
// domination, scheduling outcomes, failure characterization, and user
// behavior profiling. Each function returns structured data that
// internal/figures renders into the corresponding paper figure.
package analysis

import "crosssched/internal/trace"

// SizeCategory indexes the paper's three job-size classes.
type SizeCategory int

const (
	// SizeSmall is <10% of machine cores (HPC/hybrid) or 1 GPU (DL).
	SizeSmall SizeCategory = iota
	// SizeMiddle is 10-30% of cores (HPC/hybrid) or 2-8 GPUs (DL).
	SizeMiddle
	// SizeLarge is >30% of cores (HPC/hybrid) or >8 GPUs (DL).
	SizeLarge
)

// SizeNames are the display labels in category order.
var SizeNames = [3]string{"small", "middle", "large"}

// String names the category.
func (c SizeCategory) String() string { return SizeNames[c] }

// ClassifySize places a job's request into the paper's size classes. HPC
// and hybrid systems are classified relative to the machine (following
// Patel et al.); DL systems use absolute GPU counts (following Hu et al.).
func ClassifySize(sys trace.System, procs int) SizeCategory {
	if sys.Kind == trace.DL {
		switch {
		case procs <= 1:
			return SizeSmall
		case procs <= 8:
			return SizeMiddle
		default:
			return SizeLarge
		}
	}
	frac := float64(procs) / float64(sys.TotalCores)
	switch {
	case frac < 0.10:
		return SizeSmall
	case frac <= 0.30:
		return SizeMiddle
	default:
		return SizeLarge
	}
}

// LengthCategory indexes the paper's three runtime classes (shared across
// all systems, following Rodrigo et al.).
type LengthCategory int

const (
	// LengthShort is <1 hour.
	LengthShort LengthCategory = iota
	// LengthMiddle is 1 hour to 1 day.
	LengthMiddle
	// LengthLong is >1 day.
	LengthLong
)

// LengthNames are the display labels in category order.
var LengthNames = [3]string{"short", "middle", "long"}

// String names the category.
func (c LengthCategory) String() string { return LengthNames[c] }

// ClassifyLength places a runtime (seconds) into the paper's classes.
func ClassifyLength(run float64) LengthCategory {
	switch {
	case run < 3600:
		return LengthShort
	case run <= 86400:
		return LengthMiddle
	default:
		return LengthLong
	}
}

// MinimalProcs returns the smallest request size present in the trace —
// the paper's extra "Minimal" class in Figures 9-10 (one CPU/GPU).
func MinimalProcs(tr *trace.Trace) int {
	if tr.Len() == 0 {
		return 0
	}
	m := tr.Jobs[0].Procs
	for i := range tr.Jobs {
		if tr.Jobs[i].Procs < m {
			m = tr.Jobs[i].Procs
		}
	}
	return m
}

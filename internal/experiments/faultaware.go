package experiments

import (
	"context"
	"fmt"
	"strings"

	"crosssched/internal/ml"
	"crosssched/internal/par"
	"crosssched/internal/trace"
)

// Fault-aware proactive termination: the paper's Takeaway 7 notes that
// killed jobs waste outsized core hours and that fault-aware schedulers
// "should be revisited in the new hybrid workload setting". This experiment
// makes that concrete: train the per-user status-survival predictor on a
// trace prefix, then during the evaluation suffix, check each running job
// at periodic elapsed checkpoints and terminate it once the predicted
// probability of NOT passing exceeds a threshold. We tally the core hours
// saved on jobs that indeed would not pass, against the good work destroyed
// when a would-pass job is killed by mistake.

// FaultAwarePoint is one termination threshold's outcome.
type FaultAwarePoint struct {
	// Threshold on P(Failed or Killed | user, elapsed).
	Threshold float64
	// Terminated counts proactively killed jobs.
	Terminated int
	// TruePositives are terminated jobs that would not have passed.
	TruePositives int
	// FalseKills are terminated jobs that would have passed.
	FalseKills int
	// SavedCoreHours is the tail execution avoided on true positives.
	SavedCoreHours float64
	// LostCoreHours is the partial execution wasted on false kills (that
	// work must be redone).
	LostCoreHours float64
	// NetCoreHours = Saved - Lost.
	NetCoreHours float64
	// WastedBaseline is the total core hours consumed by non-passed jobs
	// in the evaluation window without intervention (the addressable
	// waste).
	WastedBaseline float64
}

// Precision is TruePositives / Terminated (1 when nothing terminated).
func (p FaultAwarePoint) Precision() float64 {
	if p.Terminated == 0 {
		return 1
	}
	return float64(p.TruePositives) / float64(p.Terminated)
}

// FaultAwareResult is the threshold sweep for one trace.
type FaultAwareResult struct {
	System     string
	TrainJobs  int
	EvalJobs   int
	Points     []FaultAwarePoint
	CheckEvery float64 // checkpoint period in seconds
}

// FaultAware runs the proactive-termination sweep. Checkpoints occur every
// checkEvery seconds of job elapsed time (default 300s).
func FaultAware(tr *trace.Trace, thresholds []float64, checkEvery float64) (*FaultAwareResult, error) {
	return FaultAwareContext(context.Background(), tr, thresholds, checkEvery)
}

// FaultAwareContext is FaultAware with cancellation. The predictor is
// trained once; the thresholds are evaluated in parallel (each threshold
// replays the evaluation suffix independently against the frozen
// predictor). The result order follows the input thresholds.
func FaultAwareContext(ctx context.Context, tr *trace.Trace, thresholds []float64, checkEvery float64) (*FaultAwareResult, error) {
	if tr.Len() < 100 {
		return nil, fmt.Errorf("experiments: trace too small (%d jobs)", tr.Len())
	}
	if len(thresholds) == 0 {
		thresholds = []float64{0.6, 0.7, 0.8, 0.9, 0.95}
	}
	if checkEvery <= 0 {
		checkEvery = 300
	}
	cut := tr.Len() * 7 / 10
	surv := ml.NewStatusSurvival(3)
	for i := 0; i < cut; i++ {
		j := &tr.Jobs[i]
		surv.Observe(j.User, j.Run, int(j.Status))
	}
	surv.Freeze()

	res := &FaultAwareResult{
		System: tr.System.Name, TrainJobs: cut, EvalJobs: tr.Len() - cut,
		CheckEvery: checkEvery,
	}
	wasted := 0.0
	for i := cut; i < tr.Len(); i++ {
		if tr.Jobs[i].Status != trace.Passed {
			wasted += tr.Jobs[i].CoreHours()
		}
	}

	res.Points = make([]FaultAwarePoint, len(thresholds))
	err := par.ForEach(ctx, len(thresholds), func(ctx context.Context, k int) error {
		th := thresholds[k]
		pt := FaultAwarePoint{Threshold: th, WastedBaseline: wasted}
		for i := cut; i < tr.Len(); i++ {
			j := &tr.Jobs[i]
			killAt := -1.0
			for t := checkEvery; t < j.Run; t += checkEvery {
				probs := surv.Probabilities(j.User, t)
				if 1-probs[int(trace.Passed)] >= th {
					killAt = t
					break
				}
			}
			if killAt < 0 {
				continue
			}
			pt.Terminated++
			if j.Status == trace.Passed {
				pt.FalseKills++
				pt.LostCoreHours += killAt * float64(j.Procs) / 3600
			} else {
				pt.TruePositives++
				pt.SavedCoreHours += (j.Run - killAt) * float64(j.Procs) / 3600
			}
		}
		pt.NetCoreHours = pt.SavedCoreHours - pt.LostCoreHours
		res.Points[k] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render renders the sweep.
func (r *FaultAwareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-aware proactive termination on %s (train %d, eval %d jobs; checkpoints every %.0fs)\n",
		r.System, r.TrainJobs, r.EvalJobs, r.CheckEvery)
	fmt.Fprintf(&b, "%-9s  %-10s  %-9s  %-10s  %12s  %12s  %12s  %9s\n",
		"threshold", "terminated", "truePos", "falseKills",
		"saved CH", "lost CH", "net CH", "precision")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9.2f  %-10d  %-9d  %-10d  %12.1f  %12.1f  %12.1f  %8.1f%%\n",
			p.Threshold, p.Terminated, p.TruePositives, p.FalseKills,
			p.SavedCoreHours, p.LostCoreHours, p.NetCoreHours, 100*p.Precision())
	}
	if len(r.Points) > 0 {
		fmt.Fprintf(&b, "addressable waste (core hours of non-passed jobs): %.1f\n",
			r.Points[0].WastedBaseline)
	}
	return b.String()
}

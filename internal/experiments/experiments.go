// Package experiments contains the ablation studies around the paper's
// use cases: a policy x backfilling matrix, a relaxation-factor sweep for
// relaxed vs adaptive backfilling, and Tsafrir-style backfilling with
// system-generated (Last2) runtime predictions in place of user walltimes.
// These extend the paper's evaluation along the design axes DESIGN.md
// calls out.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"crosssched/internal/ml"
	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// Cell is one (policy, backfill) evaluation in the matrix.
type Cell struct {
	Policy    sim.Policy
	Backfill  sim.BackfillKind
	AvgWait   float64
	AvgBsld   float64
	Util      float64
	Backfill2 int // jobs backfilled
}

// PolicyMatrix runs every (policy, backfill) combination on the trace.
// Combinations are simulated in parallel (each simulation is independent);
// the result order is deterministic: policies outer, backfills inner.
func PolicyMatrix(tr *trace.Trace, policies []sim.Policy, backfills []sim.BackfillKind) ([]Cell, error) {
	return PolicyMatrixContext(context.Background(), tr, policies, backfills)
}

// PolicyMatrixContext is PolicyMatrix with cancellation: when ctx is
// canceled the in-flight simulations abort at their next event and the
// lowest-index cancellation error is returned.
func PolicyMatrixContext(ctx context.Context, tr *trace.Trace, policies []sim.Policy, backfills []sim.BackfillKind) ([]Cell, error) {
	type task struct {
		pol sim.Policy
		bf  sim.BackfillKind
	}
	var tasks []task
	for _, pol := range policies {
		for _, bf := range backfills {
			tasks = append(tasks, task{pol, bf})
		}
	}
	out := make([]Cell, len(tasks))
	err := par.ForEach(ctx, len(tasks), func(ctx context.Context, i int) error {
		tk := tasks[i]
		res, err := sim.RunContext(ctx, tr, sim.Options{Policy: tk.pol, Backfill: tk.bf, RelaxFactor: 0.10})
		if err != nil {
			return fmt.Errorf("experiments: %v/%v: %w", tk.pol, tk.bf, err)
		}
		out[i] = Cell{
			Policy: tk.pol, Backfill: tk.bf,
			AvgWait: res.AvgWait, AvgBsld: res.AvgBsld,
			Util: res.Utilization, Backfill2: res.Backfilled,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderPolicyMatrix renders the matrix as a text table.
func RenderPolicyMatrix(system string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Policy x backfilling ablation on %s\n", system)
	fmt.Fprintf(&b, "%-6s  %-13s  %12s  %8s  %7s  %10s\n",
		"policy", "backfill", "avg wait (s)", "avg bsld", "util", "backfilled")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6s  %-13s  %12.1f  %8.2f  %7.4f  %10d\n",
			c.Policy, c.Backfill, c.AvgWait, c.AvgBsld, c.Util, c.Backfill2)
	}
	return b.String()
}

// SweepPoint is one relaxation factor's outcome for both variants.
type SweepPoint struct {
	Factor                      float64
	RelaxedWait, AdaptiveWait   float64
	RelaxedViol, AdaptiveViol   int
	RelaxedBsld, AdaptiveBsld   float64
	RelaxedUtil, AdaptiveUtil   float64
	RelaxedDelay, AdaptiveDelay float64
}

// RelaxFactorSweep evaluates relaxed and adaptive backfilling across
// relaxation factors — the sensitivity study behind Table II's fixed 10%.
// Factors are simulated in parallel (sim.Run is safe for concurrent use on
// a shared trace); within a factor the adaptive run depends on the relaxed
// run's observed queue length, so the pair stays sequential. The result
// order follows the input factors.
func RelaxFactorSweep(tr *trace.Trace, factors []float64) ([]SweepPoint, error) {
	return RelaxFactorSweepContext(context.Background(), tr, factors)
}

// RelaxFactorSweepContext is RelaxFactorSweep with cancellation.
func RelaxFactorSweepContext(ctx context.Context, tr *trace.Trace, factors []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(factors))
	err := par.ForEach(ctx, len(factors), func(ctx context.Context, i int) error {
		f := factors[i]
		rel, err := sim.RunContext(ctx, tr, sim.Options{Policy: sim.FCFS, Backfill: sim.Relaxed, RelaxFactor: f})
		if err != nil {
			return err
		}
		ad, err := sim.RunContext(ctx, tr, sim.Options{
			Policy: sim.FCFS, Backfill: sim.AdaptiveRelaxed,
			RelaxFactor: f, MaxQueueLen: rel.MaxQueueLen,
		})
		if err != nil {
			return err
		}
		out[i] = SweepPoint{
			Factor:      f,
			RelaxedWait: rel.AvgWait, AdaptiveWait: ad.AvgWait,
			RelaxedViol: rel.Violations, AdaptiveViol: ad.Violations,
			RelaxedBsld: rel.AvgBsld, AdaptiveBsld: ad.AvgBsld,
			RelaxedUtil: rel.Utilization, AdaptiveUtil: ad.Utilization,
			RelaxedDelay: rel.ViolationDelay, AdaptiveDelay: ad.ViolationDelay,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderSweep renders the factor sweep.
func RenderSweep(system string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Relaxation-factor sweep on %s (relaxed | adaptive)\n", system)
	fmt.Fprintf(&b, "%-7s  %11s  %11s  %11s  %11s\n",
		"factor", "wait r|a", "bsld r|a", "viol r|a", "util r|a")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7.2f  %5.0f|%5.0f  %5.2f|%5.2f  %5d|%5d  %5.3f|%5.3f\n",
			p.Factor, p.RelaxedWait, p.AdaptiveWait,
			p.RelaxedBsld, p.AdaptiveBsld,
			p.RelaxedViol, p.AdaptiveViol,
			p.RelaxedUtil, p.AdaptiveUtil)
	}
	return b.String()
}

// PredictionBackfillResult compares planning-estimate sources for EASY
// backfilling.
type PredictionBackfillResult struct {
	System string
	// UserEstimates uses the trace's requested walltimes.
	UserEstimates sim.Result
	// Last2 uses system-generated Last2 predictions (Tsafrir et al.).
	Last2 sim.Result
	// Oracle uses the true runtimes (perfect estimates).
	Oracle sim.Result
}

// defaultColdStartEstimate is the planning estimate used when a job has
// no requested walltime AND nothing at all has been observed yet — the
// very first jobs of a trace with missing walltimes. One hour is the
// conventional queue-default on the paper's systems.
const defaultColdStartEstimate = 3600

// last2Predictions precomputes per-job Last2 walltime predictions in
// submit order. Every prediction uses only information available BEFORE
// the job runs: the user's Last2 history, the job's requested walltime,
// or — when the walltime is missing — the running mean of runtimes
// observed so far across all users. The predicted job's own runtime is
// never an input (using it would leak the oracle into the "system
// prediction" arm of the comparison).
func last2Predictions(tr *trace.Trace) map[int]float64 {
	last2 := ml.NewLast2()
	preds := make(map[int]float64, tr.Len())
	seenSum, seenN := 0.0, 0
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		fallback := j.Walltime
		if fallback <= 0 {
			if seenN > 0 {
				fallback = seenSum / float64(seenN)
			} else {
				fallback = defaultColdStartEstimate
			}
		}
		preds[j.ID] = last2.Predict(j.User, fallback)
		last2.Observe(j.User, j.Run)
		seenSum += j.Run
		seenN++
	}
	return preds
}

// PredictionBackfill runs the three-estimate comparison. The Last2
// predictor is trained online: each job's prediction uses only jobs the
// scheduler has already seen complete (approximated by submit order, as in
// the original study).
func PredictionBackfill(tr *trace.Trace) (*PredictionBackfillResult, error) {
	return PredictionBackfillContext(context.Background(), tr)
}

// PredictionBackfillContext is PredictionBackfill with cancellation.
func PredictionBackfillContext(ctx context.Context, tr *trace.Trace) (*PredictionBackfillResult, error) {
	out := &PredictionBackfillResult{System: tr.System.Name}

	user, err := sim.RunContext(ctx, tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		return nil, err
	}
	out.UserEstimates = *user

	preds := last2Predictions(tr)
	l2, err := sim.RunContext(ctx, tr, sim.Options{
		Policy: sim.FCFS, Backfill: sim.EASY,
		WalltimePredictor: func(j trace.Job) float64 { return preds[j.ID] },
	})
	if err != nil {
		return nil, err
	}
	out.Last2 = *l2

	oracle, err := sim.RunContext(ctx, tr, sim.Options{
		Policy: sim.FCFS, Backfill: sim.EASY, UseActualRuntime: true,
	})
	if err != nil {
		return nil, err
	}
	out.Oracle = *oracle
	return out, nil
}

// Render renders the estimate-source comparison.
func (r *PredictionBackfillResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EASY backfilling estimate sources on %s (Tsafrir-style)\n", r.System)
	fmt.Fprintf(&b, "%-15s  %12s  %8s  %7s  %10s\n",
		"estimates", "avg wait (s)", "avg bsld", "util", "backfilled")
	row := func(name string, res sim.Result) {
		fmt.Fprintf(&b, "%-15s  %12.1f  %8.2f  %7.4f  %10d\n",
			name, res.AvgWait, res.AvgBsld, res.Utilization, res.Backfilled)
	}
	row("user walltimes", r.UserEstimates)
	row("Last2 predicted", r.Last2)
	row("oracle", r.Oracle)
	return b.String()
}

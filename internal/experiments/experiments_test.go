package experiments

import (
	"strings"
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

var cachedTrace *trace.Trace

func thetaTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if cachedTrace != nil {
		return cachedTrace
	}
	p := synth.Theta(8)
	tr, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	cachedTrace = tr
	return tr
}

func TestPolicyMatrix(t *testing.T) {
	tr := thetaTrace(t)
	cells, err := PolicyMatrix(tr,
		[]sim.Policy{sim.FCFS, sim.SJF, sim.Fair},
		[]sim.BackfillKind{sim.NoBackfill, sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells %d want 6", len(cells))
	}
	for _, c := range cells {
		if c.Util <= 0 || c.Util > 1 {
			t.Fatalf("%v/%v util %v", c.Policy, c.Backfill, c.Util)
		}
		if c.AvgWait < 0 || c.AvgBsld < 1 {
			t.Fatalf("%v/%v wait %v bsld %v", c.Policy, c.Backfill, c.AvgWait, c.AvgBsld)
		}
	}
	// EASY should backfill at least once under FCFS on a congested trace.
	var fcfsEasy, fcfsNone *Cell
	for i := range cells {
		if cells[i].Policy == sim.FCFS {
			if cells[i].Backfill == sim.EASY {
				fcfsEasy = &cells[i]
			} else if cells[i].Backfill == sim.NoBackfill {
				fcfsNone = &cells[i]
			}
		}
	}
	if fcfsEasy.Backfill2 == 0 {
		t.Fatal("EASY never backfilled")
	}
	if fcfsEasy.AvgWait > fcfsNone.AvgWait*1.05 {
		t.Fatalf("EASY wait %v much worse than none %v", fcfsEasy.AvgWait, fcfsNone.AvgWait)
	}
	out := RenderPolicyMatrix("Theta", cells)
	if !strings.Contains(out, "FCFS") || !strings.Contains(out, "easy") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestRelaxFactorSweep(t *testing.T) {
	tr := thetaTrace(t)
	pts, err := RelaxFactorSweep(tr, []float64{0.05, 0.1, 0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.RelaxedUtil <= 0 || p.AdaptiveUtil <= 0 {
			t.Fatalf("factor %v: zero util", p.Factor)
		}
		if p.RelaxedWait < 0 || p.AdaptiveWait < 0 {
			t.Fatalf("factor %v: negative wait", p.Factor)
		}
	}
	// The paper's operating point is 10%; there adaptive must not exceed
	// relaxed violations. (At extreme factors the divergent schedules make
	// the comparison noisy, so we don't assert it pointwise everywhere.)
	if pts[1].AdaptiveViol > pts[1].RelaxedViol {
		t.Errorf("factor 0.1: adaptive violations %d exceed relaxed %d",
			pts[1].AdaptiveViol, pts[1].RelaxedViol)
	}
	out := RenderSweep("Theta", pts)
	if !strings.Contains(out, "0.05") {
		t.Fatalf("render missing factors:\n%s", out)
	}
}

func TestPredictionBackfill(t *testing.T) {
	tr := thetaTrace(t)
	res, err := PredictionBackfill(tr)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]sim.Result{
		"user": res.UserEstimates, "last2": res.Last2, "oracle": res.Oracle,
	} {
		if r.Utilization <= 0 || r.AvgWait < 0 {
			t.Fatalf("%s: degenerate result %+v", name, r)
		}
	}
	// The oracle can plan tighter than user walltime overestimates, so it
	// should backfill at least as effectively (not strictly required to
	// be better on wait, but must not be wildly worse).
	if res.Oracle.AvgWait > res.UserEstimates.AvgWait*1.5 {
		t.Fatalf("oracle wait %v wildly worse than user estimates %v",
			res.Oracle.AvgWait, res.UserEstimates.AvgWait)
	}
	out := res.Render()
	for _, want := range []string{"user walltimes", "Last2 predicted", "oracle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

var cachedTrace *trace.Trace

func thetaTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if cachedTrace != nil {
		return cachedTrace
	}
	p := synth.Theta(8)
	tr, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	cachedTrace = tr
	return tr
}

func TestPolicyMatrix(t *testing.T) {
	tr := thetaTrace(t)
	cells, err := PolicyMatrix(tr,
		[]sim.Policy{sim.FCFS, sim.SJF, sim.Fair},
		[]sim.BackfillKind{sim.NoBackfill, sim.EASY})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells %d want 6", len(cells))
	}
	for _, c := range cells {
		if c.Util <= 0 || c.Util > 1 {
			t.Fatalf("%v/%v util %v", c.Policy, c.Backfill, c.Util)
		}
		if c.AvgWait < 0 || c.AvgBsld < 1 {
			t.Fatalf("%v/%v wait %v bsld %v", c.Policy, c.Backfill, c.AvgWait, c.AvgBsld)
		}
	}
	// EASY should backfill at least once under FCFS on a congested trace.
	var fcfsEasy, fcfsNone *Cell
	for i := range cells {
		if cells[i].Policy == sim.FCFS {
			if cells[i].Backfill == sim.EASY {
				fcfsEasy = &cells[i]
			} else if cells[i].Backfill == sim.NoBackfill {
				fcfsNone = &cells[i]
			}
		}
	}
	if fcfsEasy.Backfill2 == 0 {
		t.Fatal("EASY never backfilled")
	}
	if fcfsEasy.AvgWait > fcfsNone.AvgWait*1.05 {
		t.Fatalf("EASY wait %v much worse than none %v", fcfsEasy.AvgWait, fcfsNone.AvgWait)
	}
	out := RenderPolicyMatrix("Theta", cells)
	if !strings.Contains(out, "FCFS") || !strings.Contains(out, "easy") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestRelaxFactorSweep(t *testing.T) {
	tr := thetaTrace(t)
	pts, err := RelaxFactorSweep(tr, []float64{0.05, 0.1, 0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.RelaxedUtil <= 0 || p.AdaptiveUtil <= 0 {
			t.Fatalf("factor %v: zero util", p.Factor)
		}
		if p.RelaxedWait < 0 || p.AdaptiveWait < 0 {
			t.Fatalf("factor %v: negative wait", p.Factor)
		}
	}
	// The paper's operating point is 10%; there adaptive must not exceed
	// relaxed violations. (At extreme factors the divergent schedules make
	// the comparison noisy, so we don't assert it pointwise everywhere.)
	if pts[1].AdaptiveViol > pts[1].RelaxedViol {
		t.Errorf("factor 0.1: adaptive violations %d exceed relaxed %d",
			pts[1].AdaptiveViol, pts[1].RelaxedViol)
	}
	out := RenderSweep("Theta", pts)
	if !strings.Contains(out, "0.05") {
		t.Fatalf("render missing factors:\n%s", out)
	}
}

// TestLast2PredictionsNeverReadOwnRuntime is the regression test for the
// oracle leak: a job's Last2 prediction must not depend on that job's own
// runtime in any way. Perturbing job k's Run may change predictions for
// LATER jobs (it enters the history) but never job k's own.
func TestLast2PredictionsNeverReadOwnRuntime(t *testing.T) {
	tr := thetaTrace(t)
	base := last2Predictions(tr)
	for k := 0; k < tr.Len(); k += 17 {
		cp := *tr
		cp.Jobs = append([]trace.Job(nil), tr.Jobs...)
		cp.Jobs[k].Run = cp.Jobs[k].Run*3 + 1000
		perturbed := last2Predictions(&cp)
		if got, want := perturbed[cp.Jobs[k].ID], base[tr.Jobs[k].ID]; got != want {
			t.Fatalf("job %d's prediction %v changed to %v when its own runtime changed — oracle leak",
				tr.Jobs[k].ID, want, got)
		}
	}
}

// TestLast2PredictionsColdStart pins the fallback chain for jobs with no
// requested walltime: the queue default before anything is observed, then
// the running mean of observed runtimes, and the user's own history once
// one exists.
func TestLast2PredictionsColdStart(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 64})
	tr.Jobs = []trace.Job{
		{ID: 1, User: 1, Submit: 0, Run: 100, Procs: 1},  // nothing observed yet
		{ID: 2, User: 2, Submit: 10, Run: 300, Procs: 1}, // mean of {100}
		{ID: 3, User: 1, Submit: 20, Run: 50, Procs: 1},  // user 1's Last2 history
	}
	preds := last2Predictions(tr)
	if preds[1] != defaultColdStartEstimate {
		t.Fatalf("first cold-start prediction %v, want queue default %v", preds[1], float64(defaultColdStartEstimate))
	}
	if preds[2] != 100 {
		t.Fatalf("second cold-start prediction %v, want running mean 100", preds[2])
	}
	if preds[3] != 100 {
		t.Fatalf("history prediction %v, want user 1's last runtime 100", preds[3])
	}
}

func TestPredictionBackfill(t *testing.T) {
	tr := thetaTrace(t)
	res, err := PredictionBackfill(tr)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]sim.Result{
		"user": res.UserEstimates, "last2": res.Last2, "oracle": res.Oracle,
	} {
		if r.Utilization <= 0 || r.AvgWait < 0 {
			t.Fatalf("%s: degenerate result %+v", name, r)
		}
	}
	// The oracle can plan tighter than user walltime overestimates, so it
	// should backfill at least as effectively (not strictly required to
	// be better on wait, but must not be wildly worse).
	if res.Oracle.AvgWait > res.UserEstimates.AvgWait*1.5 {
		t.Fatalf("oracle wait %v wildly worse than user estimates %v",
			res.Oracle.AvgWait, res.UserEstimates.AvgWait)
	}
	out := res.Render()
	for _, want := range []string{"user walltimes", "Last2 predicted", "oracle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsCancellation: a pre-canceled context must abort every
// experiment driver with a wrapped context.Canceled instead of running
// the full study.
func TestExperimentsCancellation(t *testing.T) {
	tr := thetaTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PolicyMatrixContext(ctx, tr,
		[]sim.Policy{sim.FCFS}, []sim.BackfillKind{sim.EASY}); !errors.Is(err, context.Canceled) {
		t.Fatalf("PolicyMatrixContext: want context.Canceled, got %v", err)
	}
	if _, err := RelaxFactorSweepContext(ctx, tr, []float64{0.1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RelaxFactorSweepContext: want context.Canceled, got %v", err)
	}
	if _, err := PredictionBackfillContext(ctx, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictionBackfillContext: want context.Canceled, got %v", err)
	}
}

package experiments

import (
	"strings"
	"testing"

	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

func TestFaultAwareRejectsTiny(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 4})
	if _, err := FaultAware(tr, nil, 0); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

func TestFaultAwareStructure(t *testing.T) {
	p := synth.Philly(3)
	tr, err := p.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FaultAware(tr, []float64{0.7, 0.9}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Terminated != pt.TruePositives+pt.FalseKills {
			t.Fatalf("termination accounting broken: %+v", pt)
		}
		if pt.SavedCoreHours < 0 || pt.LostCoreHours < 0 {
			t.Fatalf("negative core hours: %+v", pt)
		}
		if pt.NetCoreHours != pt.SavedCoreHours-pt.LostCoreHours {
			t.Fatalf("net mismatch: %+v", pt)
		}
		if p := pt.Precision(); p < 0 || p > 1 {
			t.Fatalf("precision %v", p)
		}
		if pt.WastedBaseline <= 0 {
			t.Fatal("no addressable waste measured")
		}
	}
	// Higher threshold must terminate fewer (or equal) jobs.
	if res.Points[1].Terminated > res.Points[0].Terminated {
		t.Fatalf("higher threshold terminated more: %d > %d",
			res.Points[1].Terminated, res.Points[0].Terminated)
	}
	out := res.Render()
	for _, want := range []string{"threshold", "precision", "addressable waste"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

// TestFaultAwareSavesAtHighThreshold is the Takeaway-7 payoff: with a
// conservative threshold the predictor should save core hours net of the
// good work it destroys.
func TestFaultAwareSavesAtHighThreshold(t *testing.T) {
	p := synth.Philly(3)
	tr, err := p.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FaultAware(tr, []float64{0.9}, 300)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	if pt.Terminated == 0 {
		t.Skip("no terminations at 0.9 on this seed; nothing to assert")
	}
	if pt.NetCoreHours <= 0 {
		t.Errorf("high-threshold proactive termination lost core hours net: %+v", pt)
	}
	if pt.Precision() < 0.7 {
		t.Errorf("precision %.2f too low at threshold 0.9", pt.Precision())
	}
}

func TestFaultAwareDefaultThresholds(t *testing.T) {
	p := synth.Helios(2)
	tr, err := p.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FaultAware(tr, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("default thresholds produced %d points", len(res.Points))
	}
	if res.CheckEvery != 300 {
		t.Fatalf("default checkpoint period %v", res.CheckEvery)
	}
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"crosssched/internal/cluster"
	"crosssched/internal/fault"
	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// Degraded-capacity sweep: the in-simulator companion to the post-hoc
// FaultAware study. Instead of reasoning about trace status labels, it
// injects scripted capacity outages of increasing size into the simulated
// cluster and measures how each scheduling policy degrades — mean wait,
// slowdown, utilization, and the goodput/wasted core-hour split — as a
// growing fraction of every partition goes down mid-trace.

// DegradedOptions configures the sweep around its (fraction, policy) grid.
type DegradedOptions struct {
	// Backfill is used for every run (default EASY).
	Backfill sim.BackfillKind
	// RelaxFactor applies to the relaxed backfill kinds.
	RelaxFactor float64
	// Recovery, RetryCap, and CheckpointInterval set the recovery semantics
	// for jobs interrupted by an outage (default: requeue with 2 retries).
	Recovery           fault.Recovery
	RetryCap           int
	CheckpointInterval float64
}

// DegradedPoint is one (outage fraction, policy) cell of the sweep.
type DegradedPoint struct {
	Frac    float64
	Policy  sim.Policy
	AvgWait float64
	AvgBsld float64
	Util    float64
	// Interrupted/Requeued/Failed count fault-ended attempts, requeues, and
	// jobs lost terminally to the outages.
	Interrupted int
	Requeued    int
	Failed      int
	// GoodputCH and WastedCH split the consumed core hours into work that
	// counted toward completions and work destroyed by interrupts.
	GoodputCH float64
	WastedCH  float64
}

// degradedOutages scripts the sweep's capacity fault: every partition loses
// frac of its cores over the middle-left quarter of the submit span
// ([25%, 50%)), so the outage hits a loaded system and the tail of the
// trace observes the recovery.
func degradedOutages(caps []int, span, frac float64) []fault.Outage {
	start := 0.25 * span
	dur := 0.25 * span
	outs := make([]fault.Outage, 0, len(caps))
	for p, pcap := range caps {
		cores := int(frac*float64(pcap) + 0.5)
		if cores < 1 {
			cores = 1
		}
		if cores > pcap {
			cores = pcap
		}
		outs = append(outs, fault.Outage{Part: p, Start: start, Duration: dur, Cores: cores})
	}
	return outs
}

// DegradedSweep measures every (outage fraction, policy) combination on the
// trace. Fraction 0 cells run with fault injection disabled (the exact
// zero-fault baseline). Cells are simulated in parallel with indexed result
// writes, so the output is deterministic for any worker count (including a
// par.WithLimit(ctx, 1) serial run). The result order is fractions outer,
// policies inner.
func DegradedSweep(ctx context.Context, tr *trace.Trace, fracs []float64, policies []sim.Policy, opt DegradedOptions) ([]DegradedPoint, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("experiments: degraded sweep needs a non-empty trace")
	}
	if len(fracs) == 0 {
		fracs = []float64{0, 0.1, 0.25, 0.5}
	}
	if len(policies) == 0 {
		policies = []sim.Policy{sim.FCFS, sim.SJF, sim.SAF, sim.F1}
	}
	for _, f := range fracs {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("experiments: outage fraction %v outside [0, 1]", f)
		}
	}
	nParts := tr.System.VirtualClusters
	if nParts < 1 {
		nParts = 1
	}
	caps := cluster.EvenPartitions(tr.System.TotalCores, nParts)
	span := tr.Jobs[tr.Len()-1].Submit

	out := make([]DegradedPoint, len(fracs)*len(policies))
	err := par.ForEach(ctx, len(out), func(ctx context.Context, i int) error {
		frac := fracs[i/len(policies)]
		pol := policies[i%len(policies)]
		so := sim.Options{Policy: pol, Backfill: opt.Backfill, RelaxFactor: opt.RelaxFactor}
		if frac > 0 {
			so.Faults = &fault.Config{
				Outages:            degradedOutages(caps, span, frac),
				Recovery:           opt.Recovery,
				RetryCap:           opt.RetryCap,
				CheckpointInterval: opt.CheckpointInterval,
			}
		}
		res, err := sim.RunContext(ctx, tr, so)
		if err != nil {
			return fmt.Errorf("experiments: degraded %v @ %v: %w", pol, frac, err)
		}
		out[i] = DegradedPoint{
			Frac: frac, Policy: pol,
			AvgWait: res.AvgWait, AvgBsld: res.AvgBsld, Util: res.Utilization,
			Interrupted: res.Interrupted, Requeued: res.Requeued, Failed: res.FaultFailed,
			GoodputCH: res.GoodputCoreSeconds / 3600,
			WastedCH:  res.WastedCoreSeconds / 3600,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderDegraded renders the sweep as a text table.
func RenderDegraded(system string, rec fault.Recovery, pts []DegradedPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded-capacity sweep on %s (recovery: %s)\n", system, rec)
	fmt.Fprintf(&b, "%-6s  %-6s  %12s  %8s  %7s  %6s  %6s  %6s  %12s  %12s\n",
		"outage", "policy", "avg wait (s)", "avg bsld", "util",
		"intr", "requ", "lost", "goodput CH", "wasted CH")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6.2f  %-6s  %12.1f  %8.2f  %7.4f  %6d  %6d  %6d  %12.1f  %12.1f\n",
			p.Frac, p.Policy, p.AvgWait, p.AvgBsld, p.Util,
			p.Interrupted, p.Requeued, p.Failed, p.GoodputCH, p.WastedCH)
	}
	return b.String()
}

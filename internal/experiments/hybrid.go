package experiments

import (
	"context"
	"fmt"
	"strings"

	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/stats"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// Hybrid-future sweep: the paper's motivating question is how emerging DL
// workloads change scheduling on traditional HPC machines (Introduction,
// Conclusion: "the upcoming hybrid workloads"). This experiment injects an
// increasing share of DL-style jobs (small, short, bursty — Philly-like
// geometry) into a Theta-like HPC workload on the SAME machine and
// re-schedules with FCFS+EASY, measuring how scheduler outcomes degrade
// for the incumbent HPC jobs.

// HybridPoint is one DL-share outcome.
type HybridPoint struct {
	// DLShare is the injected DL fraction of total job count.
	DLShare float64
	// Totals across all jobs.
	AvgWait, AvgBsld, Util float64
	// Per-origin waits.
	HPCMedianWait float64
	HPCP90Wait    float64
	DLMedianWait  float64
	HPCJobs       int
	DLJobs        int
	// DLCoreHourShare is the injected class's share of consumed core
	// hours (small even at high count shares — DL jobs are small).
	DLCoreHourShare float64
}

// HybridSweep generates the base HPC workload once and one DL overlay per
// share, merging and re-scheduling each combination.
func HybridSweep(days float64, seed uint64, shares []float64) ([]HybridPoint, error) {
	return HybridSweepContext(context.Background(), days, seed, shares)
}

// HybridSweepContext is HybridSweep with cancellation. The base HPC trace
// is generated once; the shares are simulated in parallel (each share
// builds its own overlay and merged copy, so workers never touch shared
// mutable state). The result order follows the input shares.
func HybridSweepContext(ctx context.Context, days float64, seed uint64, shares []float64) ([]HybridPoint, error) {
	if len(shares) == 0 {
		shares = []float64{0, 0.25, 0.5, 0.75}
	}
	hpcProfile := synth.Theta(days)
	base, err := hpcProfile.Generate(seed)
	if err != nil {
		return nil, err
	}
	out := make([]HybridPoint, len(shares))
	err = par.ForEach(ctx, len(shares), func(ctx context.Context, i int) error {
		pt, err := hybridPoint(ctx, base, days, seed, shares[i])
		if err != nil {
			return fmt.Errorf("experiments: hybrid share %v: %w", shares[i], err)
		}
		out[i] = *pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func hybridPoint(ctx context.Context, base *trace.Trace, days float64, seed uint64, share float64) (*HybridPoint, error) {
	combined := base
	offset := -1
	if share > 0 {
		// DL overlay: Philly-like geometry scaled to the target count
		// share, re-homed onto the HPC machine (single pool, and the DL
		// users are forced to provide walltime estimates like everyone
		// else on the system).
		dlProfile := synth.Philly(days)
		dlProfile.Sys = base.System
		dlProfile.Sys.VirtualClusters = 0
		wantDL := share / (1 - share) * float64(base.Len())
		dlProfile.JobsPerDay = wantDL / days
		dlProfile.QueueScale = 500
		overlay, err := dlProfile.Generate(seed + 1000)
		if err != nil {
			return nil, err
		}
		nodeCores := base.System.CoresPerNode
		if nodeCores <= 0 {
			nodeCores = 1
		}
		for i := range overlay.Jobs {
			// Month-long uncheckpointed training does not survive a
			// shared HPC queue: cap converted DL jobs at 2 days.
			if overlay.Jobs[i].Run > 2*86400 {
				overlay.Jobs[i].Run = 2 * 86400
			}
			overlay.Jobs[i].Walltime = overlay.Jobs[i].Run * 2
			// GPU-node equivalence: one "GPU" of the DL workload maps to
			// one accelerator node's worth of cores on the HPC machine.
			overlay.Jobs[i].Procs *= nodeCores
			if overlay.Jobs[i].Procs > base.System.TotalCores {
				overlay.Jobs[i].Procs = base.System.TotalCores
			}
		}
		combined, offset = base.Merge(overlay)
	}

	res, err := sim.RunContext(ctx, combined, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY})
	if err != nil {
		return nil, err
	}
	pt := &HybridPoint{
		DLShare: share,
		AvgWait: res.AvgWait, AvgBsld: res.AvgBsld,
		// Window-based utilization: the simulator's makespan-based util
		// is distorted by a few very long jobs extending the horizon.
		Util: windowUtil(res.Jobs, combined.System.TotalCores),
	}
	var hpcWaits, dlWaits []float64
	for _, j := range res.Jobs {
		if offset >= 0 && j.User >= offset {
			dlWaits = append(dlWaits, j.Wait)
		} else {
			hpcWaits = append(hpcWaits, j.Wait)
		}
	}
	var hpcCH, dlCH float64
	for _, j := range res.Jobs {
		if offset >= 0 && j.User >= offset {
			dlCH += j.CoreHours()
		} else {
			hpcCH += j.CoreHours()
		}
	}
	if hpcCH+dlCH > 0 {
		pt.DLCoreHourShare = dlCH / (hpcCH + dlCH)
	}
	pt.HPCJobs = len(hpcWaits)
	pt.DLJobs = len(dlWaits)
	pt.HPCMedianWait = stats.Median(hpcWaits)
	pt.HPCP90Wait = stats.Quantile(hpcWaits, 0.9)
	pt.DLMedianWait = stats.Median(dlWaits)
	return pt, nil
}

// windowUtil computes occupancy over [first submit, last submit].
func windowUtil(jobs []trace.Job, capacity int) float64 {
	if len(jobs) < 2 {
		return 0
	}
	lo := jobs[0].Submit
	hi := jobs[len(jobs)-1].Submit
	if hi <= lo {
		return 0
	}
	busy := 0.0
	for i := range jobs {
		s, e := jobs[i].Start(), jobs[i].End()
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			busy += (e - s) * float64(jobs[i].Procs)
		}
	}
	return busy / (float64(capacity) * (hi - lo))
}

// RenderHybrid renders the sweep.
func RenderHybrid(pts []HybridPoint) string {
	var b strings.Builder
	b.WriteString("Hybrid-future sweep: DL jobs injected into a Theta-like HPC machine (FCFS+EASY)\n")
	fmt.Fprintf(&b, "%-8s  %8s  %8s  %7s  %9s  %7s  %12s  %12s  %11s\n",
		"DLshare", "HPCjobs", "DLjobs", "DL CH%", "avg bsld", "util",
		"HPC med wait", "HPC p90 wait", "DL med wait")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8.2f  %8d  %8d  %6.1f%%  %9.2f  %7.4f  %12.1f  %12.1f  %11.1f\n",
			p.DLShare, p.HPCJobs, p.DLJobs, 100*p.DLCoreHourShare, p.AvgBsld, p.Util,
			p.HPCMedianWait, p.HPCP90Wait, p.DLMedianWait)
	}
	return b.String()
}

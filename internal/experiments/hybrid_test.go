package experiments

import (
	"strings"
	"testing"
)

func TestHybridSweepStructure(t *testing.T) {
	pts, err := HybridSweep(4, 3, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	baseline, mixed := pts[0], pts[1]
	if baseline.DLJobs != 0 {
		t.Fatalf("baseline has %d DL jobs", baseline.DLJobs)
	}
	if mixed.DLJobs == 0 {
		t.Fatal("mixed point has no DL jobs")
	}
	// injected count should be roughly the requested share
	frac := float64(mixed.DLJobs) / float64(mixed.DLJobs+mixed.HPCJobs)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("DL fraction %v far from requested 0.5", frac)
	}
	if baseline.HPCJobs != mixed.HPCJobs {
		t.Fatalf("HPC base jobs changed: %d vs %d", baseline.HPCJobs, mixed.HPCJobs)
	}
	for _, p := range pts {
		if p.Util <= 0 || p.Util > 1 {
			t.Fatalf("share %v: util %v", p.DLShare, p.Util)
		}
	}
	out := RenderHybrid(pts)
	if !strings.Contains(out, "DLshare") || !strings.Contains(out, "0.50") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// TestHybridInjectionLoadsTheMachine: adding DL jobs must not reduce
// utilization, and the DL class should experience short waits relative to
// its runtimes (they are small jobs that backfill easily).
func TestHybridInjectionLoadsTheMachine(t *testing.T) {
	pts, err := HybridSweep(4, 3, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Util < pts[0].Util*0.95 {
		t.Fatalf("utilization collapsed with DL injection: %v -> %v",
			pts[0].Util, pts[1].Util)
	}
	if pts[1].DLMedianWait > pts[1].HPCMedianWait*2+60 {
		t.Fatalf("DL median wait %v should not dwarf HPC %v (small jobs backfill)",
			pts[1].DLMedianWait, pts[1].HPCMedianWait)
	}
}

func TestHybridDefaultShares(t *testing.T) {
	pts, err := HybridSweep(1, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("default shares produced %d points", len(pts))
	}
}

package experiments

import (
	"context"
	"reflect"
	"testing"

	"crosssched/internal/fault"
	"crosssched/internal/par"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
)

func TestDegradedSweep(t *testing.T) {
	tr, err := synth.VerifyHPC(0.2).Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0, 0.25, 0.5}
	policies := []sim.Policy{sim.FCFS, sim.SJF}
	opt := DegradedOptions{Backfill: sim.EASY, Recovery: fault.RecoveryRequeue, RetryCap: 2}
	pts, err := DegradedSweep(context.Background(), tr, fracs, policies, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fracs)*len(policies) {
		t.Fatalf("got %d points, want %d", len(pts), len(fracs)*len(policies))
	}
	for i, p := range pts {
		if want := fracs[i/len(policies)]; p.Frac != want {
			t.Errorf("point %d frac %v, want %v", i, p.Frac, want)
		}
		if p.Frac == 0 {
			if p.Interrupted != 0 || p.WastedCH != 0 {
				t.Errorf("zero-outage baseline has interrupts %d / wasted %v", p.Interrupted, p.WastedCH)
			}
		} else if p.GoodputCH <= 0 {
			t.Errorf("point %d (frac %v) goodput %v, want > 0", i, p.Frac, p.GoodputCH)
		}
	}
	// The sweep must actually stress the system: the largest outage should
	// interrupt at least one attempt for some policy.
	anyInterrupted := false
	for _, p := range pts {
		if p.Frac == 0.5 && p.Interrupted > 0 {
			anyInterrupted = true
		}
	}
	if !anyInterrupted {
		t.Error("50% outage interrupted nothing; the sweep is vacuous")
	}

	if out := RenderDegraded(tr.System.Name, opt.Recovery, pts); out == "" {
		t.Error("empty render")
	}
}

// TestDegradedSweepDeterministicAcrossWorkers pins the acceptance
// criterion that the sweep's output is identical for any -parallel worker
// count: a serial run and a wide run must produce the same cells.
func TestDegradedSweepDeterministicAcrossWorkers(t *testing.T) {
	tr, err := synth.VerifyVC(0.1).Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0, 0.3, 0.6}
	policies := []sim.Policy{sim.FCFS, sim.SAF, sim.F1}
	opt := DegradedOptions{Backfill: sim.EASY, Recovery: fault.RecoveryCheckpoint,
		RetryCap: 3, CheckpointInterval: 600}
	serial, err := DegradedSweep(par.WithLimit(context.Background(), 1), tr, fracs, policies, opt)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DegradedSweep(par.WithLimit(context.Background(), 8), tr, fracs, policies, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("sweep differs across worker counts:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

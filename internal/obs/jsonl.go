package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSONLWriter streams events as one JSON object per line:
//
//	{"kind":"start","t":120,"job":3,"part":0,"procs":16,"detail":120}
//
// Floats are written with strconv's shortest round-trippable formatting,
// so the output is deterministic and decodes to the exact emitted values.
// Lines are buffered; call Flush before reading the destination. Write
// errors are sticky: the first one is remembered, later events are
// dropped, and Flush reports it.
type JSONLWriter struct {
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

// AppendEventJSON appends one event's deterministic JSON object (the
// JSONL line format, without the trailing newline) to dst and returns the
// extended slice. Floats use strconv's shortest round-trippable formatting,
// so equal event streams encode to byte-identical output — the property
// the JSONL golden files and the twin service's SSE wire format rely on.
func AppendEventJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","t":`...)
	dst = strconv.AppendFloat(dst, e.Time, 'g', -1, 64)
	dst = append(dst, `,"job":`...)
	dst = strconv.AppendInt(dst, int64(e.Job), 10)
	dst = append(dst, `,"part":`...)
	dst = strconv.AppendInt(dst, int64(e.Part), 10)
	dst = append(dst, `,"procs":`...)
	dst = strconv.AppendInt(dst, int64(e.Procs), 10)
	dst = append(dst, `,"detail":`...)
	dst = strconv.AppendFloat(dst, e.Detail, 'g', -1, 64)
	return append(dst, '}')
}

// Observe encodes and buffers one event.
func (l *JSONLWriter) Observe(e Event) {
	if l.err != nil {
		return
	}
	b := AppendEventJSON(l.buf[:0], e)
	b = append(b, '\n')
	l.buf = b
	if _, err := l.bw.Write(b); err != nil {
		l.err = err
	}
}

// Flush drains the buffer and returns the first error seen.
func (l *JSONLWriter) Flush() error {
	if l.err != nil {
		return l.err
	}
	l.err = l.bw.Flush()
	return l.err
}

// wireEvent is Event with the kind as its wire name, for decoding.
type wireEvent struct {
	Kind   string  `json:"kind"`
	Time   float64 `json:"t"`
	Job    int     `json:"job"`
	Part   int     `json:"part"`
	Procs  int     `json:"procs"`
	Detail float64 `json:"detail"`
}

// ReadJSONL decodes a JSONL event stream written by JSONLWriter.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", lineNo, err)
		}
		k, err := ParseKind(w.Kind)
		if err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", lineNo, err)
		}
		out = append(out, Event{
			Kind: k, Time: w.Time, Job: w.Job, Part: w.Part,
			Procs: w.Procs, Detail: w.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

package obs

import (
	"bufio"
	"io"
	"strconv"

	"crosssched/internal/trace"
)

// JobRowWriter streams per-job result rows as one JSON object per line:
//
//	{"id":3,"user":7,"submit":120,"wait":35,"run":600,"walltime":900,"procs":16,"vc":-1,"status":"Passed","promised":155}
//
// It is the out-of-core counterpart of Result.Jobs/PromisedStart: a
// streaming run (sim.RunStream) retires each job through a sink the moment
// it completes, and this writer persists those rows without ever holding
// the trace in memory. Like JSONLWriter, floats use strconv's shortest
// round-trippable formatting (deterministic, exact), lines are buffered,
// and write errors are sticky — the first one is remembered, later rows
// are dropped, and Flush reports it.
type JobRowWriter struct {
	bw  *bufio.Writer
	buf []byte
	n   int
	err error
}

// NewJobRowWriter wraps w in a buffered row sink.
func NewJobRowWriter(w io.Writer) *JobRowWriter {
	return &JobRowWriter{bw: bufio.NewWriter(w), buf: make([]byte, 0, 192)}
}

// WriteRow encodes and buffers one retired job with its first promised
// start (-1 when the job never became a blocked queue head).
func (l *JobRowWriter) WriteRow(j trace.Job, promised float64) error {
	if l.err != nil {
		return l.err
	}
	b := l.buf[:0]
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(j.ID), 10)
	b = append(b, `,"user":`...)
	b = strconv.AppendInt(b, int64(j.User), 10)
	b = append(b, `,"submit":`...)
	b = strconv.AppendFloat(b, j.Submit, 'g', -1, 64)
	b = append(b, `,"wait":`...)
	b = strconv.AppendFloat(b, j.Wait, 'g', -1, 64)
	b = append(b, `,"run":`...)
	b = strconv.AppendFloat(b, j.Run, 'g', -1, 64)
	b = append(b, `,"walltime":`...)
	b = strconv.AppendFloat(b, j.Walltime, 'g', -1, 64)
	b = append(b, `,"procs":`...)
	b = strconv.AppendInt(b, int64(j.Procs), 10)
	b = append(b, `,"vc":`...)
	b = strconv.AppendInt(b, int64(j.VC), 10)
	b = append(b, `,"status":"`...)
	b = append(b, j.Status.String()...)
	b = append(b, `","promised":`...)
	b = strconv.AppendFloat(b, promised, 'g', -1, 64)
	b = append(b, "}\n"...)
	l.buf = b
	if _, err := l.bw.Write(b); err != nil {
		l.err = err
		return err
	}
	l.n++
	return nil
}

// Rows returns the number of rows successfully buffered.
func (l *JobRowWriter) Rows() int { return l.n }

// Flush drains the buffer and returns the first error seen.
func (l *JobRowWriter) Flush() error {
	if l.err != nil {
		return l.err
	}
	l.err = l.bw.Flush()
	return l.err
}

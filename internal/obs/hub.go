package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Sub.Next once the hub has shut down and the
// subscriber's buffer is drained, and by Hub.Subscribe on a closed hub.
var ErrClosed = errors.New("obs: hub closed")

// ErrSubscribers is returned by Hub.Subscribe when the hub's subscriber
// budget is exhausted.
var ErrSubscribers = errors.New("obs: subscriber limit reached")

// Frame is one fan-out delivery: either a decision event or an
// out-of-band notice posted by the publisher (Notice non-empty). Notices
// ride the same bounded ring as events, so a flood of either cannot grow
// memory.
type Frame struct {
	Event  Event
	Notice string
}

// Hub fans one decision-event stream out to dynamically attached
// subscribers, each with its own bounded buffer. Publishing never blocks
// and never allocates: when a subscriber's ring is full the OLDEST
// buffered frame is dropped and a per-subscriber drop counter incremented,
// so one slow consumer cannot stall the publisher or grow memory — it just
// loses history (Sub.Next reports the gap so clients can resynchronize).
//
// Hub implements Observer, so it can sit directly in sim.Options.Observer
// (via Tee) or receive replayed events. All methods are safe for
// concurrent use.
type Hub struct {
	maxSubs int

	mu     sync.Mutex
	subs   []*Sub
	closed bool
}

// NewHub returns a hub admitting at most maxSubs concurrent subscribers
// (<= 0 means unlimited).
func NewHub(maxSubs int) *Hub {
	return &Hub{maxSubs: maxSubs}
}

// Observe delivers the event to every subscriber (drop-oldest on full
// buffers). Implements Observer.
func (h *Hub) Observe(e Event) {
	h.mu.Lock()
	for _, s := range h.subs {
		s.push(Frame{Event: e})
	}
	h.mu.Unlock()
}

// Notify delivers an out-of-band notice to every subscriber, in-band with
// the event stream (same ring, same drop-oldest policy). The twin service
// uses it for state-change announcements a client must see to interpret
// the stream, e.g. a session degrading to ephemeral mode.
func (h *Hub) Notify(msg string) {
	h.mu.Lock()
	for _, s := range h.subs {
		s.push(Frame{Notice: msg})
	}
	h.mu.Unlock()
}

// Subscribe attaches a new subscriber with a ring buffer of buf frames
// (<= 0 means 64). It fails with ErrClosed on a closed hub and
// ErrSubscribers when the budget is exhausted.
func (h *Hub) Subscribe(buf int) (*Sub, error) {
	if buf <= 0 {
		buf = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if h.maxSubs > 0 && len(h.subs) >= h.maxSubs {
		return nil, fmt.Errorf("%w (%d active)", ErrSubscribers, len(h.subs))
	}
	s := &Sub{ring: make([]Frame, buf), wake: make(chan struct{}, 1)}
	h.subs = append(h.subs, s)
	return s, nil
}

// Unsubscribe detaches s and wakes any blocked Next with ErrClosed.
// Detaching an already-removed subscriber is a no-op.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	for i, x := range h.subs {
		if x == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	s.close("")
}

// Close detaches every subscriber (their buffered frames remain readable,
// then Next returns ErrClosed) and rejects future subscriptions.
func (h *Hub) Close() { h.CloseReason("") }

// CloseReason is Close with a terminal reason each subscriber can read
// back via Sub.Reason once its buffer drains — how the twin tells SSE
// clients whether their session was evicted, parked to disk, or cleanly
// shut down.
func (h *Hub) CloseReason(reason string) {
	h.mu.Lock()
	subs := h.subs
	h.subs = nil
	h.closed = true
	h.mu.Unlock()
	for _, s := range subs {
		s.close(reason)
	}
}

// Subscribers reports the number of attached subscribers.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Sub is one hub subscription: a fixed-size ring of frames plus a count of
// frames lost to backpressure. Next/NextFrame are single-consumer; the hub
// side may push concurrently.
type Sub struct {
	mu      sync.Mutex
	ring    []Frame
	head, n int
	dropped uint64
	closed  bool
	reason  string
	wake    chan struct{}
}

// push appends f, dropping the oldest buffered frame when full.
func (s *Sub) push(f Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = f
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// close marks the subscription finished; buffered frames stay readable.
// The first non-empty reason wins.
func (s *Sub) close(reason string) {
	s.mu.Lock()
	s.closed = true
	if s.reason == "" {
		s.reason = reason
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Reason reports why the subscription was closed ("" for an ordinary
// Unsubscribe or reasonless Close). It is meaningful once Next or
// NextFrame has returned ErrClosed.
func (s *Sub) Reason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reason
}

// Next blocks until an event is available and returns it together with the
// number of frames dropped since the previous read (0 when the consumer
// kept up). Notice frames are skipped — use NextFrame to see them. It
// returns ctx.Err() when ctx is done first, and ErrClosed once the
// subscription is detached and the buffer drained.
func (s *Sub) Next(ctx context.Context) (Event, uint64, error) {
	var dropped uint64
	for {
		f, d, err := s.NextFrame(ctx)
		dropped += d
		if err != nil {
			return Event{}, dropped, err
		}
		if f.Notice != "" {
			continue
		}
		return f.Event, dropped, nil
	}
}

// NextFrame is Next without the notice filtering: it returns the next
// buffered frame, event or notice, in publication order.
func (s *Sub) NextFrame(ctx context.Context) (Frame, uint64, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			f := s.ring[s.head]
			s.ring[s.head] = Frame{} // drop the notice string reference
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			d := s.dropped
			s.dropped = 0
			s.mu.Unlock()
			return f, d, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Frame{}, 0, ErrClosed
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Frame{}, 0, ctx.Err()
		}
	}
}

// Buffered reports the number of frames currently queued (for tests and
// status endpoints).
func (s *Sub) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

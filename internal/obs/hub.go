package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Sub.Next once the hub has shut down and the
// subscriber's buffer is drained, and by Hub.Subscribe on a closed hub.
var ErrClosed = errors.New("obs: hub closed")

// ErrSubscribers is returned by Hub.Subscribe when the hub's subscriber
// budget is exhausted.
var ErrSubscribers = errors.New("obs: subscriber limit reached")

// Hub fans one decision-event stream out to dynamically attached
// subscribers, each with its own bounded buffer. Publishing never blocks
// and never allocates: when a subscriber's ring is full the OLDEST
// buffered event is dropped and a per-subscriber drop counter incremented,
// so one slow consumer cannot stall the publisher or grow memory — it just
// loses history (Sub.Next reports the gap so clients can resynchronize).
//
// Hub implements Observer, so it can sit directly in sim.Options.Observer
// (via Tee) or receive replayed events. All methods are safe for
// concurrent use.
type Hub struct {
	maxSubs int

	mu     sync.Mutex
	subs   []*Sub
	closed bool
}

// NewHub returns a hub admitting at most maxSubs concurrent subscribers
// (<= 0 means unlimited).
func NewHub(maxSubs int) *Hub {
	return &Hub{maxSubs: maxSubs}
}

// Observe delivers the event to every subscriber (drop-oldest on full
// buffers). Implements Observer.
func (h *Hub) Observe(e Event) {
	h.mu.Lock()
	for _, s := range h.subs {
		s.push(e)
	}
	h.mu.Unlock()
}

// Subscribe attaches a new subscriber with a ring buffer of buf events
// (<= 0 means 64). It fails with ErrClosed on a closed hub and
// ErrSubscribers when the budget is exhausted.
func (h *Hub) Subscribe(buf int) (*Sub, error) {
	if buf <= 0 {
		buf = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if h.maxSubs > 0 && len(h.subs) >= h.maxSubs {
		return nil, fmt.Errorf("%w (%d active)", ErrSubscribers, len(h.subs))
	}
	s := &Sub{ring: make([]Event, buf), wake: make(chan struct{}, 1)}
	h.subs = append(h.subs, s)
	return s, nil
}

// Unsubscribe detaches s and wakes any blocked Next with ErrClosed.
// Detaching an already-removed subscriber is a no-op.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	for i, x := range h.subs {
		if x == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	s.close()
}

// Close detaches every subscriber (their buffered events remain readable,
// then Next returns ErrClosed) and rejects future subscriptions.
func (h *Hub) Close() {
	h.mu.Lock()
	subs := h.subs
	h.subs = nil
	h.closed = true
	h.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// Subscribers reports the number of attached subscribers.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Sub is one hub subscription: a fixed-size ring of events plus a count of
// events lost to backpressure. Next is single-consumer; the hub side may
// push concurrently.
type Sub struct {
	mu      sync.Mutex
	ring    []Event
	head, n int
	dropped uint64
	closed  bool
	wake    chan struct{}
}

// push appends e, dropping the oldest buffered event when full.
func (s *Sub) push(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// close marks the subscription finished; buffered events stay readable.
func (s *Sub) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Next blocks until an event is available and returns it together with the
// number of events dropped since the previous Next (0 when the consumer
// kept up). It returns ctx.Err() when ctx is done first, and ErrClosed
// once the subscription is detached and the buffer drained.
func (s *Sub) Next(ctx context.Context) (Event, uint64, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			e := s.ring[s.head]
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			d := s.dropped
			s.dropped = 0
			s.mu.Unlock()
			return e, d, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, 0, ErrClosed
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Event{}, 0, ctx.Err()
		}
	}
}

// Buffered reports the number of events currently queued (for tests and
// status endpoints).
func (s *Sub) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func progressLines(buf *bytes.Buffer) []string {
	out := strings.TrimSuffix(buf.String(), "\n")
	if out == "" {
		return nil
	}
	return strings.Split(out, "\n")
}

// TestProgressShortRunEmitsImmediately pins the first-interval fix: a run
// shorter than the reporting interval must still show life on its first
// event instead of staying silent until Finish. Pre-fix, Observe printed
// nothing until a full interval had elapsed since construction.
func TestProgressShortRunEmitsImmediately(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour) // no interval will ever elapse
	p.Observe(Event{Kind: JobSubmit, Time: 1})
	if got := progressLines(&buf); len(got) != 1 {
		t.Fatalf("first event printed %d lines, want 1:\n%s", len(got), buf.String())
	}
	p.Observe(Event{Kind: JobStart, Time: 2})
	p.Observe(Event{Kind: JobComplete, Time: 3})
	p.Finish()
	lines := progressLines(&buf)
	if len(lines) != 2 {
		t.Fatalf("short run printed %d lines, want 2 (first event + final):\n%s", len(lines), buf.String())
	}
	final := lines[len(lines)-1]
	if !strings.Contains(final, "submitted=1") || !strings.Contains(final, "started=1") || !strings.Contains(final, "completed=1") {
		t.Fatalf("final line does not reflect all events: %q", final)
	}
}

// TestProgressFinishSkipsDuplicate pins the double-print fix: when the
// last Observe just printed a line, Finish must not repeat it. Pre-fix,
// Finish always printed, so the last two lines were identical.
func TestProgressFinishSkipsDuplicate(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond) // every event qualifies
	const n = 3
	for i := 0; i < n; i++ {
		time.Sleep(time.Microsecond)
		p.Observe(Event{Kind: JobSubmit, Time: float64(i)})
	}
	p.Finish()
	lines := progressLines(&buf)
	if len(lines) != n {
		t.Fatalf("printed %d lines for %d observes + Finish, want %d (no duplicate final line):\n%s",
			len(lines), n, n, buf.String())
	}
	if len(lines) >= 2 && lines[len(lines)-1] == lines[len(lines)-2] {
		t.Fatalf("Finish duplicated the last Observe line:\n%s", buf.String())
	}
}

// TestProgressFinishAfterQuietTail: events observed after the last printed
// line must still be flushed by Finish.
func TestProgressFinishAfterQuietTail(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Hour)
	p.Observe(Event{Kind: JobSubmit, Time: 1}) // prints (first event)
	p.Observe(Event{Kind: JobSubmit, Time: 2}) // buffered
	p.Finish()                                 // must flush
	lines := progressLines(&buf)
	if len(lines) != 2 {
		t.Fatalf("printed %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "submitted=2") {
		t.Fatalf("final line missing the tail event: %q", lines[1])
	}
}

// TestProgressFinishNothingObserved: Finish on an untouched Progress
// prints nothing (there is no progress to report).
func TestProgressFinishNothingObserved(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond)
	p.Finish()
	if buf.Len() != 0 {
		t.Fatalf("Finish with no events printed %q", buf.String())
	}
}

package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress prints a one-line run status at most once per interval, driven
// by the event stream — useful on large traces where a run takes long
// enough to wonder whether it is still making progress.
type Progress struct {
	w        io.Writer
	every    time.Duration
	counts   Counter
	lastWall time.Time
	lastSim  float64
}

// NewProgress reports to w at most once per every (default 1s).
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = time.Second
	}
	return &Progress{w: w, every: every, lastWall: time.Now()}
}

// Observe counts the event and emits a status line when the interval has
// elapsed.
func (p *Progress) Observe(e Event) {
	p.counts.Observe(e)
	p.lastSim = e.Time
	if now := time.Now(); now.Sub(p.lastWall) >= p.every {
		p.lastWall = now
		p.line()
	}
}

// Finish prints the final status line.
func (p *Progress) Finish() { p.line() }

func (p *Progress) line() {
	fmt.Fprintf(p.w, "progress: t=%.0fs submitted=%d started=%d completed=%d backfilled=%d violations=%d\n",
		p.lastSim, p.counts.Count(JobSubmit), p.counts.Count(JobStart),
		p.counts.Count(JobComplete), p.counts.Count(Backfill), p.counts.Count(PromiseViolation))
}

package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress prints a one-line run status at most once per interval, driven
// by the event stream — useful on large traces where a run takes long
// enough to wonder whether it is still making progress.
//
// The first event prints a line immediately (so even runs shorter than the
// interval show life, instead of staying silent until Finish), later
// events are throttled to one line per interval, and Finish prints a final
// line only when events arrived after the last printed line — never a
// duplicate of a line Observe just wrote.
type Progress struct {
	w        io.Writer
	every    time.Duration
	counts   Counter
	lastWall time.Time
	lastSim  float64
	// sinceLine counts events observed since the last printed line; zero
	// means the last line already reflects everything seen.
	sinceLine int64
	started   bool
}

// NewProgress reports to w at most once per every (default 1s).
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = time.Second
	}
	return &Progress{w: w, every: every}
}

// Observe counts the event and emits a status line on the first event and
// whenever the interval has elapsed since the last line.
func (p *Progress) Observe(e Event) {
	p.counts.Observe(e)
	p.lastSim = e.Time
	p.sinceLine++
	now := time.Now()
	if !p.started {
		// First event: print immediately and start the interval clock here,
		// not at construction time (a caller may build the Progress well
		// before the run starts).
		p.started = true
		p.lastWall = now
		p.line()
		return
	}
	if now.Sub(p.lastWall) >= p.every {
		p.lastWall = now
		p.line()
	}
}

// Finish prints the final status line, unless nothing was observed since
// the last printed line (in particular, when the last Observe just
// printed, or when no event was ever observed).
func (p *Progress) Finish() {
	if p.sinceLine == 0 {
		return
	}
	p.line()
}

func (p *Progress) line() {
	p.sinceLine = 0
	fmt.Fprintf(p.w, "progress: t=%.0fs submitted=%d started=%d completed=%d backfilled=%d violations=%d\n",
		p.lastSim, p.counts.Count(JobSubmit), p.counts.Count(JobStart),
		p.counts.Count(JobComplete), p.counts.Count(Backfill), p.counts.Count(PromiseViolation))
}

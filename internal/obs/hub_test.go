package obs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestHubDropOldest: a full subscriber ring drops the OLDEST events and
// reports the gap on the next read, while newer events survive.
func TestHubDropOldest(t *testing.T) {
	h := NewHub(0)
	sub, err := h.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Observe(Event{Kind: JobSubmit, Job: i, Time: float64(i)})
	}
	e, dropped, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if e.Job != 6 {
		t.Fatalf("first surviving event is job %d, want 6 (oldest dropped)", e.Job)
	}
	for want := 7; want < 10; want++ {
		e, dropped, err = sub.Next(context.Background())
		if err != nil || dropped != 0 || e.Job != want {
			t.Fatalf("next = job %d dropped %d err %v, want job %d", e.Job, dropped, err, want)
		}
	}
}

// TestHubCloseDrainsThenEOF: Close leaves buffered events readable, then
// Next reports ErrClosed; a blocked Next wakes immediately.
func TestHubCloseDrainsThenEOF(t *testing.T) {
	h := NewHub(0)
	sub, err := h.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(Event{Job: 1})
	h.Close()
	if e, _, err := sub.Next(context.Background()); err != nil || e.Job != 1 {
		t.Fatalf("buffered event after close: %+v, %v", e, err)
	}
	if _, _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed sub returned %v, want ErrClosed", err)
	}
	if _, err := h.Subscribe(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe on closed hub returned %v, want ErrClosed", err)
	}

	// A reader blocked in Next must wake on close, not hang.
	h2 := NewHub(0)
	sub2, err := h2.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := sub2.Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h2.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Next returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Next did not wake on hub close")
	}
}

// TestHubSubscriberBudget: the cap rejects the N+1th subscriber and frees
// a slot on unsubscribe.
func TestHubSubscriberBudget(t *testing.T) {
	h := NewHub(2)
	a, _ := h.Subscribe(1)
	if _, err := h.Subscribe(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe(1); !errors.Is(err, ErrSubscribers) {
		t.Fatalf("over-budget Subscribe returned %v, want ErrSubscribers", err)
	}
	h.Unsubscribe(a)
	if _, err := h.Subscribe(1); err != nil {
		t.Fatalf("Subscribe after Unsubscribe failed: %v", err)
	}
	if got := h.Subscribers(); got != 2 {
		t.Fatalf("Subscribers() = %d, want 2", got)
	}
}

// TestHubConcurrentPublishAndRead drives publishers against a consumer
// under the race detector: every received event is well-formed and the
// consumer observes a per-publisher monotone sequence (drop-oldest may cut
// holes, but never reorders).
func TestHubConcurrentPublishAndRead(t *testing.T) {
	h := NewHub(0)
	sub, err := h.Subscribe(32)
	if err != nil {
		t.Fatal(err)
	}
	const pubs, per = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(Event{Part: p, Job: i})
			}
		}(p)
	}
	readerDone := make(chan struct{})
	last := [pubs]int{}
	for i := range last {
		last[i] = -1
	}
	go func() {
		defer close(readerDone)
		for {
			e, _, err := sub.Next(context.Background())
			if err != nil {
				return
			}
			if e.Job <= last[e.Part] {
				t.Errorf("publisher %d reordered: job %d after %d", e.Part, e.Job, last[e.Part])
				return
			}
			last[e.Part] = e.Job
		}
	}()
	wg.Wait()
	h.Close()
	select {
	case <-readerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("reader did not finish")
	}
}

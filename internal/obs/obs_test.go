package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: JobSubmit, Time: 0, Job: 0, Part: 0, Procs: 2, Detail: 100},
		{Kind: JobStart, Time: 0, Job: 0, Part: 0, Procs: 2, Detail: 0},
		{Kind: ReservationMade, Time: 5.5, Job: 1, Part: 0, Procs: 4, Detail: 100.25},
		{Kind: Backfill, Time: 5.5, Job: 2, Part: 1, Procs: 1, Detail: 1},
		{Kind: JobComplete, Time: 100, Job: 0, Part: 0, Procs: 2, Detail: 100},
		{Kind: PromiseViolation, Time: 110.125, Job: 1, Part: 0, Procs: 4, Detail: 9.875},
		{Kind: ReservationRelaxed, Time: 110.125, Job: 1, Part: 0, Procs: 4, Detail: 120},
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no wire name", k)
		}
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, back, err, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Fatalf("out-of-range kind name %q", got)
	}
}

func TestRecorderAndCounter(t *testing.T) {
	var rec Recorder
	var cnt Counter
	o := Tee(&rec, nil, &cnt)
	for _, e := range sampleEvents() {
		o.Observe(e)
	}
	if len(rec.Events) != len(sampleEvents()) {
		t.Fatalf("recorded %d events, want %d", len(rec.Events), len(sampleEvents()))
	}
	if rec.Events[2] != sampleEvents()[2] {
		t.Fatalf("event mangled in flight: %+v", rec.Events[2])
	}
	if cnt.Count(JobSubmit) != 1 || cnt.Count(JobStart) != 1 || cnt.Total() != int64(len(sampleEvents())) {
		t.Fatalf("counter tallies wrong: %+v", cnt)
	}
}

func TestTeeCollapses(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should be nil so the simulator keeps its fast path")
	}
	var rec Recorder
	if Tee(nil, &rec) != Observer(&rec) {
		t.Fatal("single-observer Tee should return the observer itself")
	}
}

// TestJSONLRoundTrip pins the wire format: every written event decodes
// back to the exact same value, including floats.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	events := sampleEvents()
	for _, e := range events {
		w.Observe(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every line must be standalone valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"bogus","t":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSyncedObserverConcurrent(t *testing.T) {
	var cnt Counter
	o := Synced(&cnt)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.Observe(Event{Kind: JobStart})
			}
		}()
	}
	wg.Wait()
	if cnt.Count(JobStart) != 8000 {
		t.Fatalf("lost events: %d", cnt.Count(JobStart))
	}
	if Synced(nil) != nil {
		t.Fatal("Synced(nil) must stay nil")
	}
}

func TestMetricsJSONAndPublish(t *testing.T) {
	m := &Metrics{Events: 10, Arrivals: 5, Completions: 5, JobsStarted: 5, WallSeconds: 0.25}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != *m {
		t.Fatalf("metrics JSON round trip: %+v != %+v", back, *m)
	}

	Publish("obs_test_metrics", m)
	v := expvar.Get("obs_test_metrics")
	if v == nil {
		t.Fatal("metrics not published")
	}
	if !strings.Contains(v.String(), `"events":10`) {
		t.Fatalf("published metrics missing counters: %s", v.String())
	}
	// Republishing the same name must swap, not panic.
	m2 := &Metrics{Events: 99}
	Publish("obs_test_metrics", m2)
	if !strings.Contains(expvar.Get("obs_test_metrics").String(), `"events":99`) {
		t.Fatalf("republish did not swap: %s", expvar.Get("obs_test_metrics").String())
	}
}

func TestProgressEmitsLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond) // every event qualifies
	for _, e := range sampleEvents() {
		p.Observe(e)
		time.Sleep(time.Microsecond)
	}
	p.Finish()
	outStr := buf.String()
	if !strings.Contains(outStr, "progress: t=") || !strings.Contains(outStr, "started=") {
		t.Fatalf("unexpected progress output: %q", outStr)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"crosssched/internal/trace"
)

// TestJobRowWriterRoundTrip: rows decode back field for field with
// encoding/json, proving the hand-rolled encoding is valid JSON and the
// shortest-float formatting is exact.
func TestJobRowWriterRoundTrip(t *testing.T) {
	jobs := []trace.Job{
		{ID: 0, User: 3, Submit: 0, Wait: 12.5, Run: 600, Walltime: 900, Procs: 16, VC: -1, Status: trace.Passed},
		{ID: 7, User: 0, Submit: 0.1234567890123, Wait: 0, Run: 1e-9, Walltime: 1e9, Procs: 1, VC: 2, Status: trace.Killed},
	}
	promised := []float64{-1, 155.25}
	var buf bytes.Buffer
	w := NewJobRowWriter(&buf)
	for i, j := range jobs {
		if err := w.WriteRow(j, promised[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != len(jobs) {
		t.Fatalf("Rows() = %d, want %d", w.Rows(), len(jobs))
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(jobs) {
		t.Fatalf("%d lines, want %d", len(lines), len(jobs))
	}
	for i, line := range lines {
		var got struct {
			ID       int     `json:"id"`
			User     int     `json:"user"`
			Submit   float64 `json:"submit"`
			Wait     float64 `json:"wait"`
			Run      float64 `json:"run"`
			Walltime float64 `json:"walltime"`
			Procs    int     `json:"procs"`
			VC       int     `json:"vc"`
			Status   string  `json:"status"`
			Promised float64 `json:"promised"`
		}
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		j := jobs[i]
		if got.ID != j.ID || got.User != j.User || got.Submit != j.Submit ||
			got.Wait != j.Wait || got.Run != j.Run || got.Walltime != j.Walltime ||
			got.Procs != j.Procs || got.VC != j.VC ||
			got.Status != j.Status.String() || got.Promised != promised[i] {
			t.Fatalf("line %d decoded %+v, want %+v promised %v", i, got, j, promised[i])
		}
	}
}

// failAfter errors once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestJobRowWriterStickyError: the first write error is remembered and
// surfaced by every later call, including Flush.
func TestJobRowWriterStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	w := NewJobRowWriter(&failAfter{n: 16, err: wantErr})
	var firstErr error
	for i := 0; i < 10000 && firstErr == nil; i++ {
		firstErr = w.WriteRow(trace.Job{ID: i, Procs: 1, Run: 1, Walltime: 1}, -1)
	}
	if !errors.Is(firstErr, wantErr) {
		t.Fatalf("write error not surfaced: %v", firstErr)
	}
	if err := w.WriteRow(trace.Job{}, -1); !errors.Is(err, wantErr) {
		t.Fatalf("error not sticky on WriteRow: %v", err)
	}
	if err := w.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("error not sticky on Flush: %v", err)
	}
}

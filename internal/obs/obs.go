// Package obs is the simulator's observability layer: a structured
// decision-event stream, per-run metrics, and the observers that consume
// them (in-memory recording, JSONL export, progress reporting).
//
// The simulator emits one Event per scheduling decision through the
// Observer interface when — and only when — an observer is attached
// (sim.Options.Observer). Events are plain value structs handed to
// Observe by value, so the disabled path costs a single nil check per
// decision and allocates nothing; an attached observer owns whatever cost
// it incurs. Observers are invoked synchronously from the simulation loop
// and must not call back into the simulator.
package obs

import (
	"fmt"
	"sync"
)

// Kind enumerates the decision-event types the simulator emits.
type Kind uint8

const (
	// JobSubmit: a job joined its partition's waiting queue.
	// Detail is the scheduler's planning estimate (walltime, prediction,
	// or runtime fallback) for the job.
	JobSubmit Kind = iota
	// JobStart: a job was dispatched onto cores. Detail is its waiting
	// time in seconds.
	JobStart
	// JobComplete: a running job released its cores. Detail is the
	// planned (estimate-based) end time, so estimate overruns are visible
	// by comparing Detail with Time.
	JobComplete
	// Backfill: the started job jumped ahead of a blocked queue head.
	// Emitted immediately after the job's JobStart event; Detail is the
	// queue position it was taken from (>= 1).
	Backfill
	// ReservationMade: a blocked queue head received its first promised
	// start time. Detail is the promised start. At most one per job.
	ReservationMade
	// ReservationRelaxed: a backfill was admitted under relaxed or
	// adaptive backfilling by delaying the head's promise within its
	// allowance. The event names the HEAD job; Detail is the relaxed
	// deadline the backfill was held to.
	ReservationRelaxed
	// PromiseViolation: a job started later than its promised start.
	// Emitted after the job's JobStart event; Detail is the delay in
	// seconds behind the promise.
	PromiseViolation
	// FaultNodeDown: a capacity fault drained cores from a partition.
	// Job is -1 (no job involved); Procs is the drained core count and
	// Detail the scheduled repair time.
	FaultNodeDown
	// FaultNodeUp: drained cores returned to service. Job is -1; Procs is
	// the restored core count and Detail the outage's start time.
	FaultNodeUp
	// FaultJobInterrupt: a running job's attempt was cut short — by a
	// capacity fault taking its cores or by a job fault. Procs is the
	// attempt's core count; Detail is the attempt's elapsed seconds.
	FaultJobInterrupt
	// FaultJobRequeue: an interrupted job re-entered its partition's
	// waiting queue. Emitted immediately after the job's
	// FaultJobInterrupt event; Detail is the remaining work in seconds
	// the next attempt will run (less than the original runtime after a
	// checkpoint restore).
	FaultJobRequeue

	numKinds = iota
)

// kindNames are the wire names used in JSONL output.
var kindNames = [numKinds]string{
	"submit", "start", "complete", "backfill", "reservation", "relaxed", "violation",
	"fault.node_down", "fault.node_up", "fault.job_interrupt", "fault.job_requeue",
}

// String returns the event kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a wire name back to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one scheduling decision. Time is the simulation clock in
// seconds; Job is the trace job ID the decision concerns; Part is the
// partition it happened in; Procs is the job's core request; Detail is a
// kind-dependent payload documented on each Kind constant.
type Event struct {
	Kind   Kind    `json:"kind"`
	Time   float64 `json:"t"`
	Job    int     `json:"job"`
	Part   int     `json:"part"`
	Procs  int     `json:"procs"`
	Detail float64 `json:"detail"`
}

// Observer receives the decision stream. Implementations are called
// synchronously from the simulation loop, in decision order.
type Observer interface {
	Observe(Event)
}

// Recorder collects every event in memory, in emission order. It is not
// safe for concurrent use; wrap it with Synced to share across runs.
type Recorder struct {
	Events []Event
}

// Observe appends the event.
func (r *Recorder) Observe(e Event) { r.Events = append(r.Events, e) }

// Counter tallies events per kind without retaining them.
type Counter struct {
	counts [numKinds]int64
}

// Observe increments the event's kind tally.
func (c *Counter) Observe(e Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind]++
	}
}

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) int64 {
	if int(k) < len(c.counts) {
		return c.counts[k]
	}
	return 0
}

// Total returns the tally across all kinds.
func (c *Counter) Total() int64 {
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// tee fans one stream out to several observers, in order.
type tee struct {
	obs []Observer
}

func (t *tee) Observe(e Event) {
	for _, o := range t.obs {
		o.Observe(e)
	}
}

// Tee combines observers into one. Nil entries are dropped; Tee returns
// nil when nothing remains (so the result can go straight into
// sim.Options.Observer and keep the disabled fast path), and the observer
// itself when exactly one remains.
func Tee(observers ...Observer) Observer {
	kept := make([]Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return &tee{obs: kept}
	}
}

// synced serializes Observe calls with a mutex.
type synced struct {
	mu sync.Mutex
	o  Observer
}

func (s *synced) Observe(e Event) {
	s.mu.Lock()
	s.o.Observe(e)
	s.mu.Unlock()
}

// Synced wraps an observer so it can be shared by concurrent simulation
// runs (each sim.Run is single-threaded, but separate runs may share one
// sink). Returns nil for a nil observer.
func Synced(o Observer) Observer {
	if o == nil {
		return nil
	}
	return &synced{o: o}
}

package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// Metrics are the per-run counters and timers the simulator maintains.
// They are always cheap integer increments inside the run (no locking, no
// allocation); pass a *Metrics in sim.Options.Metrics to receive a copy
// when the run finishes (including a canceled run, so partial progress is
// visible).
type Metrics struct {
	// Events counts event-loop iterations (distinct clock advances).
	Events int64 `json:"events"`
	// Arrivals and Completions count the two event classes processed.
	Arrivals    int64 `json:"arrivals"`
	Completions int64 `json:"completions"`
	// SchedulePasses counts per-partition scheduling passes.
	SchedulePasses int64 `json:"schedule_passes"`
	// ScoreSorts and ScoreCacheHits split dynamic-policy queue orderings
	// into recomputed sorts and passes served from the per-(partition,
	// time, fair-version) score cache. Both stay zero for static policies,
	// whose order is fixed at arrival.
	ScoreSorts     int64 `json:"score_sorts"`
	ScoreCacheHits int64 `json:"score_cache_hits"`
	// JobsStarted, Backfilled, and Violations mirror the result metrics.
	JobsStarted int64 `json:"jobs_started"`
	Backfilled  int64 `json:"backfilled"`
	Violations  int64 `json:"violations"`
	// Conservative-backfilling plan maintenance (zero unless the run uses
	// Conservative): ConsPasses counts planning passes, ConsKeptJobs sums
	// the reservations carried over from the previous pass by the
	// incremental plan, and ConsPlannedJobs sums the reservations planned
	// fresh. Kept/(Kept+Planned) is the replan work avoided.
	ConsPasses      int64 `json:"cons_passes,omitempty"`
	ConsKeptJobs    int64 `json:"cons_kept_jobs,omitempty"`
	ConsPlannedJobs int64 `json:"cons_planned_jobs,omitempty"`
	// Fault-injection counters (all zero when the fault layer is off):
	// capacity events applied, attempts interrupted, jobs requeued, and
	// jobs terminally failed by faults.
	CapacityFaults int64 `json:"capacity_faults,omitempty"`
	Interrupts     int64 `json:"interrupts,omitempty"`
	Requeues       int64 `json:"requeues,omitempty"`
	FaultFailed    int64 `json:"fault_failed,omitempty"`
	// Streaming-intake gauges (zero — and omitted — on materialized runs):
	// MaxWindowJobs is the peak number of jobs resident in the sliding
	// window (admitted but not yet retired), the quantity that must stay
	// O(active + lookahead) regardless of trace length; JobsRetired counts
	// rows flushed to the sink.
	MaxWindowJobs int64 `json:"max_window_jobs,omitempty"`
	JobsRetired   int64 `json:"jobs_retired,omitempty"`
	// Shards is the number of parallel shards the run actually executed on
	// (1 for ordinary single-shard runs). ShardFallbackReason is non-empty
	// when sim.Options.Shards asked for a sharded run but the run degraded
	// to the single-shard path, naming the partition coupling (fair-share
	// accounts, fault injection, globally-normalized adaptive backfill,
	// caller callbacks) or trace shape that forced the fallback.
	Shards              int64  `json:"shards,omitempty"`
	ShardFallbackReason string `json:"shard_fallback_reason,omitempty"`
	// Twin-service durability counters (zero — and omitted — outside the
	// twin service, which maintains one Metrics per manager): sessions
	// rebuilt from their write-ahead journal (at startup or on parked-
	// session reactivation), torn or corrupt journal tails truncated at
	// the first bad frame, sessions spilled to disk by LRU eviction,
	// parked sessions transparently reactivated on lookup, and sessions
	// degraded to ephemeral (journal-less) mode after a journal write
	// failure.
	TwinRecovered   int64 `json:"twin_recovered,omitempty"`
	TwinTruncations int64 `json:"twin_truncations,omitempty"`
	TwinParked      int64 `json:"twin_parked,omitempty"`
	TwinReactivated int64 `json:"twin_reactivated,omitempty"`
	TwinEphemeral   int64 `json:"twin_ephemeral,omitempty"`
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// Canceled reports whether the run was cut short by its context.
	Canceled bool `json:"canceled"`
}

// WriteJSON writes the metrics as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// The expvar registry forbids republishing a name, but a long-running
// service reruns simulations under the same logical name; publishedMetrics
// indirects the expvar.Func through a swappable pointer so Publish can be
// called once per run.
var (
	publishedMu      sync.Mutex
	publishedMetrics = map[string]*Metrics{}
)

// Publish exposes the metrics under the given expvar name (e.g. on
// /debug/vars when an HTTP server is running). Publishing the same name
// again swaps the underlying metrics instead of panicking like
// expvar.Publish would.
func Publish(name string, m *Metrics) {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	if _, ok := publishedMetrics[name]; !ok {
		expvar.Publish(name, expvar.Func(func() interface{} {
			publishedMu.Lock()
			defer publishedMu.Unlock()
			return publishedMetrics[name]
		}))
	}
	publishedMetrics[name] = m
}

package core

import (
	"strings"
	"testing"
)

func TestRenderReport(t *testing.T) {
	tr, err := GenerateSystem("Philly", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderReport(Characterize(tr))
	for _, want := range []string{"Philly", "virtual clusters", "geometries", "failures", "util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderReportUnpartitioned(t *testing.T) {
	tr, err := GenerateSystem("Theta", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderReport(Characterize(tr))
	if strings.Contains(out, "virtual clusters") {
		t.Fatal("unpartitioned system should not mention virtual clusters")
	}
}

func TestRenderComparison(t *testing.T) {
	c := compared(t)
	out := RenderComparison(c)
	for _, want := range []string{"system", "Takeaways:", "[HOLDS]", "T8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison missing %q", want)
		}
	}
	for _, name := range []string{"BlueWaters", "Mira", "Theta", "Philly", "Helios"} {
		if !strings.Contains(out, name) {
			t.Fatalf("comparison missing system %s", name)
		}
	}
}

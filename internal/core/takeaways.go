package core

import (
	"fmt"
	"math"

	"crosssched/internal/analysis"
	"crosssched/internal/trace"
)

// Takeaway is one of the paper's eight cross-system observations evaluated
// against measured data.
type Takeaway struct {
	ID       int
	Title    string
	Holds    bool
	Evidence string
}

// byKind partitions reports into DL and non-DL (HPC+hybrid) groups.
func byKind(reports []*Report) (dl, hpc []*Report) {
	for _, r := range reports {
		if r.System.Kind == trace.DL {
			dl = append(dl, r)
		} else {
			hpc = append(hpc, r)
		}
	}
	return dl, hpc
}

// EvaluateTakeaways checks each of the paper's eight takeaways against the
// reports. With fewer than one DL and one non-DL system, cross-kind
// takeaways report Holds=false with an explanatory evidence string.
func EvaluateTakeaways(reports []*Report) []Takeaway {
	return []Takeaway{
		takeaway1(reports),
		takeaway2(reports),
		takeaway3(reports),
		takeaway4(reports),
		takeaway5(reports),
		takeaway6(reports),
		takeaway7(reports),
		takeaway8(reports),
	}
}

// takeaway1: DL runtimes are shorter and more diverse than HPC runtimes.
func takeaway1(reports []*Report) Takeaway {
	t := Takeaway{ID: 1, Title: "DL job runtimes are shorter and more diverse"}
	dl, hpc := byKind(reports)
	if len(dl) == 0 || len(hpc) == 0 {
		t.Evidence = "needs at least one DL and one non-DL system"
		return t
	}
	dlMed, dlSpread := geoStats(dl)
	hpcMed, hpcSpread := geoStats(hpc)
	t.Holds = dlMed < hpcMed && dlSpread > hpcSpread
	t.Evidence = fmt.Sprintf(
		"median runtime DL %.0fs vs HPC %.0fs; p99/p1 log-spread DL %.1f vs HPC %.1f decades",
		dlMed, hpcMed, dlSpread, hpcSpread)
	return t
}

func geoStats(rs []*Report) (medianRuntime, logSpread float64) {
	for _, r := range rs {
		medianRuntime += r.Geometry.RuntimeCDF.Inverse(0.5)
		p99 := r.Geometry.RuntimeCDF.Inverse(0.99)
		p01 := r.Geometry.RuntimeCDF.Inverse(0.01)
		if p01 < 1 {
			p01 = 1
		}
		logSpread += math.Log10(p99) - math.Log10(p01)
	}
	n := float64(len(rs))
	return medianRuntime / n, logSpread / n
}

// takeaway2: diurnal patterns exist but are system-specific.
func takeaway2(reports []*Report) Takeaway {
	t := Takeaway{ID: 2, Title: "Diurnal submission patterns are system-specific"}
	if len(reports) < 2 {
		t.Evidence = "needs at least two systems"
		return t
	}
	minR, maxR := math.Inf(1), 0.0
	for _, r := range reports {
		ratio := r.Geometry.DiurnalRatio
		if math.IsInf(ratio, 1) {
			ratio = 50
		}
		if ratio < minR {
			minR = ratio
		}
		if ratio > maxR {
			maxR = ratio
		}
	}
	// patterns exist (some system is peaked) but generality fails (another
	// is much flatter)
	t.Holds = maxR >= 4 && maxR/minR >= 2
	t.Evidence = fmt.Sprintf("hourly max/min ratios span %.1fx to %.1fx across systems", minR, maxR)
	return t
}

// takeaway3: small (single-accelerator) jobs dominate DL submissions.
func takeaway3(reports []*Report) Takeaway {
	t := Takeaway{ID: 3, Title: "DL clusters are dominated by small (1-GPU) requests"}
	dl, _ := byKind(reports)
	if len(dl) == 0 {
		t.Evidence = "needs a DL system"
		return t
	}
	minShare := 1.0
	for _, r := range dl {
		share := r.CoreHours.CountBySize[analysis.SizeSmall]
		if share < minShare {
			minShare = share
		}
	}
	t.Holds = minShare >= 0.6
	t.Evidence = fmt.Sprintf("smallest single-GPU job-count share among DL systems: %.0f%%", 100*minShare)
	return t
}

// takeaway4: dominant core-hour groups exist everywhere but shift.
func takeaway4(reports []*Report) Takeaway {
	t := Takeaway{ID: 4, Title: "Dominant job groups exist but shift across systems"}
	if len(reports) < 2 {
		t.Evidence = "needs at least two systems"
		return t
	}
	allDominated := true
	lengths := map[analysis.LengthCategory]bool{}
	sizes := map[analysis.SizeCategory]bool{}
	for _, r := range reports {
		dl := r.CoreHours.DominantLength()
		ds := r.CoreHours.DominantSize()
		if r.CoreHours.ByLength[dl] < 0.5 && r.CoreHours.BySize[ds] < 0.5 {
			allDominated = false
		}
		lengths[dl] = true
		sizes[ds] = true
	}
	t.Holds = allDominated && (len(lengths) > 1 || len(sizes) > 1)
	t.Evidence = fmt.Sprintf("every system has a >50%% core-hour class; %d distinct dominant length classes, %d size classes",
		len(lengths), len(sizes))
	return t
}

// takeaway5: DL clusters run at lower utilization.
func takeaway5(reports []*Report) Takeaway {
	t := Takeaway{ID: 5, Title: "DL clusters show lower utilization despite queued jobs"}
	dl, hpc := byKind(reports)
	if len(dl) == 0 || len(hpc) == 0 {
		t.Evidence = "needs at least one DL and one non-DL system"
		return t
	}
	minDL, minHPC := math.Inf(1), math.Inf(1)
	for _, r := range dl {
		if u := r.Scheduling.Utilization; u < minDL {
			minDL = u
		}
	}
	for _, r := range hpc {
		if u := r.Scheduling.Utilization; u < minHPC {
			minHPC = u
		}
	}
	t.Holds = minDL < minHPC
	t.Evidence = fmt.Sprintf("lowest DL utilization %.2f vs lowest HPC/hybrid %.2f", minDL, minHPC)
	return t
}

// takeaway6: waits differ sharply; the hybrid system waits longest.
func takeaway6(reports []*Report) Takeaway {
	t := Takeaway{ID: 6, Title: "Hybrid workloads challenge schedulers: longest waits"}
	var hybrid *Report
	maxOther := 0.0
	for _, r := range reports {
		med := r.Scheduling.WaitCDF.Inverse(0.5)
		if r.System.Kind == trace.Hybrid {
			hybrid = r
		} else if med > maxOther {
			maxOther = med
		}
	}
	if hybrid == nil {
		t.Evidence = "needs a hybrid system"
		return t
	}
	hmed := hybrid.Scheduling.WaitCDF.Inverse(0.5)
	t.Holds = hmed >= maxOther
	t.Evidence = fmt.Sprintf("hybrid median wait %.0fs vs max elsewhere %.0fs", hmed, maxOther)
	return t
}

// takeaway7: failures are common everywhere and killed jobs waste outsized
// resources.
func takeaway7(reports []*Report) Takeaway {
	t := Takeaway{ID: 7, Title: "Failures are common; killed jobs waste outsized core hours"}
	if len(reports) == 0 {
		t.Evidence = "no systems"
		return t
	}
	worstPass := 0.0
	holds := true
	for _, r := range reports {
		if r.Failures.PassRate() > 0.75 {
			holds = false
		}
		if r.Failures.PassRate() > worstPass {
			worstPass = r.Failures.PassRate()
		}
		killedCount := r.Failures.CountShare[trace.Killed]
		killedCH := r.Failures.CoreHourShare[trace.Killed]
		if killedCH < killedCount {
			holds = false
		}
	}
	t.Holds = holds
	t.Evidence = fmt.Sprintf("highest pass rate %.0f%%; killed core-hour share exceeds killed count share on every system", 100*worstPass)
	return t
}

// takeaway8: users adapt submissions to queue pressure.
func takeaway8(reports []*Report) Takeaway {
	t := Takeaway{ID: 8, Title: "Users submit smaller jobs under queue pressure"}
	if len(reports) == 0 {
		t.Evidence = "no systems"
		return t
	}
	grows := 0
	considered := 0
	for _, r := range reports {
		qb := r.QueueBehavior
		if qb.Counts[analysis.QueueLong]+qb.Counts[analysis.QueueMiddle] < 50 {
			continue // not enough pressure data on this system
		}
		considered++
		hi := qb.SizeShare[analysis.QueueLong][0]
		if qb.Counts[analysis.QueueLong] < 50 {
			hi = qb.SizeShare[analysis.QueueMiddle][0]
		}
		if hi > qb.SizeShare[analysis.QueueShort][0] {
			grows++
		}
	}
	t.Holds = considered > 0 && grows*2 >= considered
	t.Evidence = fmt.Sprintf("minimal-request share grows with queue on %d of %d systems with pressure data", grows, considered)
	return t
}

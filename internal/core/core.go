// Package core is the public facade of the crosssched library: one-call
// pipelines that generate a calibrated workload, characterize it with the
// paper's methodology, evaluate the paper's eight takeaways against the
// data, and run the two use-case studies (elapsed-time runtime prediction
// and adaptive relaxed backfilling).
package core

import (
	"fmt"

	"crosssched/internal/analysis"
	"crosssched/internal/figures"
	"crosssched/internal/predict"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// Report bundles every characterization the paper applies to one system.
type Report struct {
	System        trace.System
	Jobs          int
	Geometry      analysis.Geometry
	CoreHours     analysis.CoreHourShares
	Scheduling    analysis.Scheduling
	Failures      analysis.Failures
	UserGroups    analysis.UserGroups
	QueueBehavior analysis.QueueBehavior
	UserStatus    analysis.UserStatusRuntimes
}

// Characterize runs the full analysis suite on a trace. The trace must
// carry waits (real traces do; synth-generated traces do too).
func Characterize(tr *trace.Trace) *Report {
	return &Report{
		System:        tr.System,
		Jobs:          tr.Len(),
		Geometry:      analysis.AnalyzeGeometry(tr),
		CoreHours:     analysis.AnalyzeCoreHours(tr),
		Scheduling:    analysis.AnalyzeScheduling(tr),
		Failures:      analysis.AnalyzeFailures(tr),
		UserGroups:    analysis.AnalyzeUserGroups(tr, 10, 20, 50),
		QueueBehavior: analysis.AnalyzeQueueBehavior(tr),
		UserStatus:    analysis.AnalyzeUserStatusRuntimes(tr, 3),
	}
}

// GenerateSystem produces a calibrated trace for one of the paper's five
// systems (Mira, Theta, BlueWaters, Philly, Helios).
func GenerateSystem(name string, days float64, seed uint64) (*trace.Trace, error) {
	p, err := synth.ByName(name, days)
	if err != nil {
		return nil, err
	}
	return p.Generate(seed)
}

// Comparison is a cross-system study: per-system reports plus the paper's
// takeaways evaluated against the data.
type Comparison struct {
	Reports   []*Report
	Takeaways []Takeaway
}

// Compare characterizes each trace and evaluates the takeaways.
func Compare(traces []*trace.Trace) *Comparison {
	c := &Comparison{}
	for _, tr := range traces {
		c.Reports = append(c.Reports, Characterize(tr))
	}
	c.Takeaways = EvaluateTakeaways(c.Reports)
	return c
}

// CompareBuiltin generates all five built-in systems and compares them.
func CompareBuiltin(days float64, seed uint64) (*Comparison, error) {
	var traces []*trace.Trace
	for _, name := range synth.SystemNames {
		tr, err := GenerateSystem(name, days, seed)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		traces = append(traces, tr)
	}
	return Compare(traces), nil
}

// RunRuntimePrediction executes use case 1 on a trace.
func RunRuntimePrediction(tr *trace.Trace, seed uint64) (*predict.Result, error) {
	return predict.Run(tr, predict.Config{Seed: seed})
}

// RunAdaptiveBackfill executes use case 2 on a trace (requires walltimes).
func RunAdaptiveBackfill(tr *trace.Trace) (*figures.TableIIRow, error) {
	return figures.CompareRelaxedAdaptive(tr)
}

package core

import (
	"fmt"
	"strings"
)

// RenderReport renders a single-system characterization as text — the
// summary a downstream user gets for their own trace.
func RenderReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (%s) — %d jobs, %d cores", r.System.Name,
		r.System.Kind, r.Jobs, r.System.TotalCores)
	if r.System.VirtualClusters > 1 {
		fmt.Fprintf(&b, ", %d virtual clusters", r.System.VirtualClusters)
	}
	b.WriteString(" ===\n")

	fmt.Fprintf(&b, "geometries: runtime p50 %.0fs p90 %.0fs | arrival gap p50 %.1fs | cores p50 %.0f\n",
		r.Geometry.RuntimeCDF.Inverse(0.5), r.Geometry.RuntimeCDF.Inverse(0.9),
		r.Geometry.IntervalCDF.Inverse(0.5), r.Geometry.CoresCDF.Inverse(0.5))
	fmt.Fprintf(&b, "diurnal max/min %.1fx | dominant core-hour class %s/%s\n",
		r.Geometry.DiurnalRatio, r.CoreHours.DominantSize(), r.CoreHours.DominantLength())
	fmt.Fprintf(&b, "scheduling: util %.3f | wait p50 %.0fs p80 %.0fs\n",
		r.Scheduling.Utilization,
		r.Scheduling.WaitCDF.Inverse(0.5), r.Scheduling.WaitCDF.Inverse(0.8))
	fmt.Fprintf(&b, "failures: passed %.0f%% | wasted core-hours %.0f%%\n",
		100*r.Failures.PassRate(), 100*r.Failures.WastedCoreHourShare())
	if len(r.UserGroups.Coverage) >= 10 && r.UserGroups.Users > 0 {
		fmt.Fprintf(&b, "users: top-10 config groups cover %.0f%% (%d heavy users)\n",
			100*r.UserGroups.Coverage[9], r.UserGroups.Users)
	}
	return b.String()
}

// RenderComparison renders a cross-system study: per-system one-liners and
// the eight takeaways with evidence.
func RenderComparison(c *Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %7s %7s %9s\n",
		"system", "jobs", "medRun(s)", "medGap(s)", "util", "pass%", "medWait(s)")
	for _, r := range c.Reports {
		fmt.Fprintf(&b, "%-12s %8d %10.0f %10.1f %7.3f %7.1f %9.0f\n",
			r.System.Name, r.Jobs,
			r.Geometry.RuntimeCDF.Inverse(0.5),
			r.Geometry.IntervalCDF.Inverse(0.5),
			r.Scheduling.Utilization,
			100*r.Failures.PassRate(),
			r.Scheduling.WaitCDF.Inverse(0.5))
	}
	b.WriteString("\nTakeaways:\n")
	for _, tw := range c.Takeaways {
		mark := "HOLDS"
		if !tw.Holds {
			mark = "FAILS"
		}
		fmt.Fprintf(&b, "  [%s] T%d %s\n        %s\n", mark, tw.ID, tw.Title, tw.Evidence)
	}
	return b.String()
}

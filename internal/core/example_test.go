package core_test

import (
	"fmt"

	"crosssched/internal/core"
)

// ExampleGenerateSystem shows the one-call path from a system name to a
// calibrated synthetic trace.
func ExampleGenerateSystem() {
	tr, err := core.GenerateSystem("Helios", 1, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.System.Name, tr.System.TotalCores, "GPUs")
	fmt.Println(tr.Len() > 1000)
	// Output:
	// Helios 6416 GPUs
	// true
}

// ExampleCharacterize runs the paper's full analysis suite on a trace.
func ExampleCharacterize() {
	tr, err := core.GenerateSystem("Philly", 1, 42)
	if err != nil {
		panic(err)
	}
	r := core.Characterize(tr)
	fmt.Println("virtual clusters:", r.System.VirtualClusters)
	fmt.Println("pass rate below 75%:", r.Failures.PassRate() < 0.75)
	fmt.Println("dominant length:", r.CoreHours.DominantLength())
	// Output:
	// virtual clusters: 14
	// pass rate below 75%: true
	// dominant length: long
}

// ExampleEvaluateTakeaways checks the paper's observations against data.
func ExampleEvaluateTakeaways() {
	var reports []*core.Report
	for _, name := range []string{"Theta", "Helios"} {
		tr, err := core.GenerateSystem(name, 1, 7)
		if err != nil {
			panic(err)
		}
		reports = append(reports, core.Characterize(tr))
	}
	tws := core.EvaluateTakeaways(reports)
	fmt.Println(len(tws), "takeaways")
	fmt.Println("T1:", tws[0].Holds) // DL shorter & more diverse than HPC
	// Output:
	// 8 takeaways
	// T1: true
}

package core

import (
	"testing"

	"crosssched/internal/trace"
)

// comparison is computed once for the package tests.
var cached *Comparison

func compared(t *testing.T) *Comparison {
	t.Helper()
	if cached != nil {
		return cached
	}
	c, err := CompareBuiltin(6, 21)
	if err != nil {
		t.Fatal(err)
	}
	cached = c
	return c
}

func TestGenerateSystemUnknown(t *testing.T) {
	if _, err := GenerateSystem("Summit", 1, 1); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestCharacterizeProducesAllSections(t *testing.T) {
	tr, err := GenerateSystem("Helios", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := Characterize(tr)
	if r.Jobs != tr.Len() || r.System.Name != "Helios" {
		t.Fatalf("report header wrong: %+v", r.System)
	}
	if r.Geometry.RuntimeSummary.N == 0 {
		t.Fatal("geometry missing")
	}
	if r.CoreHours.Total <= 0 {
		t.Fatal("core hours missing")
	}
	if r.Scheduling.WaitSummary.N == 0 {
		t.Fatal("scheduling missing")
	}
	if r.Failures.PassRate() <= 0 {
		t.Fatal("failures missing")
	}
	if len(r.UserStatus.Users) == 0 {
		t.Fatal("user status missing")
	}
}

func TestCompareBuiltinFiveSystems(t *testing.T) {
	c := compared(t)
	if len(c.Reports) != 5 {
		t.Fatalf("reports %d want 5", len(c.Reports))
	}
	if len(c.Takeaways) != 8 {
		t.Fatalf("takeaways %d want 8", len(c.Takeaways))
	}
	for i, tw := range c.Takeaways {
		if tw.ID != i+1 {
			t.Fatalf("takeaway IDs out of order: %+v", tw)
		}
		if tw.Title == "" || tw.Evidence == "" {
			t.Fatalf("takeaway %d missing text", tw.ID)
		}
	}
}

// TestTakeawaysHoldOnCalibratedData is the core end-to-end claim: the
// calibrated generators reproduce all eight of the paper's observations.
func TestTakeawaysHoldOnCalibratedData(t *testing.T) {
	c := compared(t)
	for _, tw := range c.Takeaways {
		if !tw.Holds {
			t.Errorf("takeaway %d (%s) does not hold: %s", tw.ID, tw.Title, tw.Evidence)
		}
	}
}

func TestTakeawaysDegradeGracefully(t *testing.T) {
	// Single HPC system: cross-kind takeaways must not panic and should
	// explain what is missing.
	tr, err := GenerateSystem("Theta", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := Compare([]*trace.Trace{tr})
	if len(c.Takeaways) != 8 {
		t.Fatalf("takeaways %d", len(c.Takeaways))
	}
	if c.Takeaways[0].Holds {
		t.Fatal("takeaway 1 cannot hold without a DL system")
	}
	empty := EvaluateTakeaways(nil)
	for _, tw := range empty {
		if tw.Holds {
			t.Fatalf("takeaway %d holds on empty input", tw.ID)
		}
	}
}

func TestRunRuntimePredictionSmoke(t *testing.T) {
	tr, err := GenerateSystem("Philly", 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRuntimePrediction(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 5 {
		t.Fatalf("models %d want 5", len(res.Models))
	}
}

func TestRunAdaptiveBackfillSmoke(t *testing.T) {
	tr, err := GenerateSystem("Theta", 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunAdaptiveBackfill(tr)
	if err != nil {
		t.Fatal(err)
	}
	if row.System != "Theta" || row.RelaxedUtil <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
}

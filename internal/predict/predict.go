// Package predict implements the paper's first use case (Section VI-A):
// job runtime prediction with and without the elapsed-time feature.
//
// The evaluation protocol follows the paper's fairness rule: for an elapsed
// threshold e, every method — with or without the feature — predicts only
// jobs that actually ran at least e seconds (the jobs "still alive" at
// prediction time). The "with elapsed time" variants receive e as a model
// input; for the feature models it is an extra column whose training rows
// are expanded over a threshold grid so the model learns the conditional
// P(runtime | features, survived e). For Last2 the variant predicts from
// the user's historical runtimes that exceeded e (the Figure 11
// observation).
package predict

import (
	"context"
	"fmt"
	"math"
	"sort"

	"crosssched/internal/dist"
	"crosssched/internal/ml"
	"crosssched/internal/par"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// ModelNames lists the evaluated predictors in the paper's order.
var ModelNames = []string{"Last2", "Tobit", "XGBoost", "LR", "MLP"}

// Config parameterizes the experiment.
type Config struct {
	// Models to evaluate; nil means all of ModelNames.
	Models []string
	// ElapsedFractions of the mean runtime used as thresholds
	// (default 1/8, 1/4, 1/2 — the paper's grid).
	ElapsedFractions []float64
	// TrainFrac is the time-ordered train split (default 0.7).
	TrainFrac float64
	// MaxTrainRows caps the expanded training set (default 20000).
	MaxTrainRows int
	// Seed drives subsampling and stochastic models.
	Seed uint64
}

// VariantResult is one (threshold, variant) evaluation.
type VariantResult struct {
	ElapsedSeconds float64
	Baseline       ml.EvalResult // without elapsed time
	WithElapsed    ml.EvalResult
}

// ModelResult aggregates one model across thresholds.
type ModelResult struct {
	Model    string
	Variants []VariantResult
}

// Result is the full Figure 12 data for one system.
type Result struct {
	System      string
	MeanRuntime float64
	Fractions   []float64
	Models      []ModelResult
	TestJobs    int
}

// jobFeatures is the feature row available at submission (plus elapsed).
type jobFeatures struct {
	feats   []float64
	runtime float64
	cens    bool
	user    int
}

// Run executes the experiment on a trace.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(cfg.Models) == 0 {
		cfg.Models = ModelNames
	}
	if len(cfg.ElapsedFractions) == 0 {
		cfg.ElapsedFractions = []float64{1.0 / 8, 1.0 / 4, 1.0 / 2}
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	if cfg.MaxTrainRows <= 0 {
		cfg.MaxTrainRows = 20000
	}
	if tr.Len() < 100 {
		return nil, fmt.Errorf("predict: trace too small (%d jobs)", tr.Len())
	}

	rows := buildFeatures(tr)
	meanRun := stats.Mean(tr.Runtimes())
	cut := int(float64(len(rows)) * cfg.TrainFrac)
	train, test := rows[:cut], rows[cut:]

	res := &Result{
		System:      tr.System.Name,
		MeanRuntime: meanRun,
		Fractions:   cfg.ElapsedFractions,
		TestJobs:    len(test),
	}
	// Model families train independently; run them on the shared worker
	// pool with results kept in the configured order.
	results := make([]*ModelResult, len(cfg.Models))
	err := par.ForEach(context.Background(), len(cfg.Models), func(_ context.Context, i int) error {
		name := cfg.Models[i]
		mr, err := runModel(name, tr, train, test, meanRun, cfg)
		if err != nil {
			return fmt.Errorf("predict: %s: %w", name, err)
		}
		results[i] = mr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range cfg.Models {
		res.Models = append(res.Models, *results[i])
	}
	return res, nil
}

// buildFeatures computes the per-job feature rows in submit order, using
// only information available when each job is submitted.
func buildFeatures(tr *trace.Trace) []jobFeatures {
	type hist struct {
		runs  []float64
		total float64
	}
	users := map[int]*hist{}
	rows := make([]jobFeatures, 0, tr.Len())
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		h := users[j.User]
		if h == nil {
			h = &hist{}
			users[j.User] = h
		}
		last, last2, med := 0.0, 0.0, 0.0
		if n := len(h.runs); n > 0 {
			last = h.runs[n-1]
			if n > 1 {
				last2 = (h.runs[n-1] + h.runs[n-2]) / 2
			} else {
				last2 = last
			}
			recent := h.runs
			if n > 20 {
				recent = h.runs[n-20:]
			}
			med = stats.Median(recent)
		}
		hour := hourOfDay(j.Submit, tr.System.StartHour)
		rows = append(rows, jobFeatures{
			feats: []float64{
				math.Log1p(last),
				math.Log1p(last2),
				math.Log1p(med),
				math.Log1p(j.Walltime),
				math.Log1p(float64(j.Procs)),
				hour,
			},
			runtime: j.Run,
			cens:    j.Walltime > 0 && j.Run >= j.Walltime*0.999,
			user:    j.User,
		})
		h.runs = append(h.runs, j.Run)
	}
	return rows
}

// hourOfDay maps a submit offset (seconds, possibly negative for jobs
// carried in from before the trace window) onto [0, 24). math.Mod keeps
// the sign of its dividend, so negative submits need the extra wrap.
func hourOfDay(submit float64, startHour int) float64 {
	hour := math.Mod(submit/3600+float64(startHour), 24)
	if hour < 0 {
		hour += 24
	}
	if hour >= 24 { // Mod(-eps)+24 can round up to exactly 24
		hour = 0
	}
	return hour
}

// runModel evaluates one model family across all thresholds.
func runModel(name string, tr *trace.Trace, train, test []jobFeatures, meanRun float64, cfg Config) (*ModelResult, error) {
	mr := &ModelResult{Model: name}
	if name == "Last2" {
		return runLast2(tr, cfg, meanRun)
	}

	// Baseline model: plain features, trained once.
	base, err := newModel(name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	baseDS := datasetFrom(train, nil, cfg, 0)
	if err := base.Fit(baseDS); err != nil {
		return nil, err
	}

	// Elapsed model: features + elapsed column, rows expanded over the
	// threshold grid (0 and each experiment threshold the row survives).
	grid := []float64{0}
	for _, f := range cfg.ElapsedFractions {
		grid = append(grid, f*meanRun)
	}
	elapsed, err := newModel(name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	elapsedDS := datasetFrom(train, grid, cfg, 1)
	if err := elapsed.Fit(elapsedDS); err != nil {
		return nil, err
	}

	for _, f := range cfg.ElapsedFractions {
		e := f * meanRun
		var actual, predBase, predElapsed []float64
		for _, row := range test {
			if row.runtime < e {
				continue
			}
			actual = append(actual, row.runtime)
			predBase = append(predBase, base.Predict(row.feats))
			withE := append(append([]float64(nil), row.feats...), math.Log1p(e))
			p := elapsed.Predict(withE)
			if p < e {
				p = e // the job has provably run at least e
			}
			predElapsed = append(predElapsed, p)
		}
		mr.Variants = append(mr.Variants, VariantResult{
			ElapsedSeconds: e,
			Baseline:       ml.Evaluate(actual, predBase),
			WithElapsed:    ml.Evaluate(actual, predElapsed),
		})
	}
	return mr, nil
}

// runLast2 evaluates the history-based predictor with an online sweep.
func runLast2(tr *trace.Trace, cfg Config, meanRun float64) (*ModelResult, error) {
	mr := &ModelResult{Model: "Last2"}
	cut := int(float64(tr.Len()) * cfg.TrainFrac)
	for _, f := range cfg.ElapsedFractions {
		e := f * meanRun
		m := ml.NewLast2()
		var actual, predBase, predElapsed []float64
		for i := range tr.Jobs {
			j := &tr.Jobs[i]
			if i >= cut && j.Run >= e {
				actual = append(actual, j.Run)
				predBase = append(predBase, m.Predict(j.User, meanRun))
				predElapsed = append(predElapsed, m.PredictWithElapsed(j.User, e, meanRun))
			}
			m.Observe(j.User, j.Run)
		}
		mr.Variants = append(mr.Variants, VariantResult{
			ElapsedSeconds: e,
			Baseline:       ml.Evaluate(actual, predBase),
			WithElapsed:    ml.Evaluate(actual, predElapsed),
		})
	}
	return mr, nil
}

// datasetFrom builds a training dataset; when grid is non-nil each row is
// expanded into one sample per surviving threshold with the elapsed column
// appended (extraCols = 1).
func datasetFrom(rows []jobFeatures, grid []float64, cfg Config, extraCols int) *ml.Dataset {
	ds := &ml.Dataset{}
	add := func(feats []float64, e float64, y float64, cens bool) {
		row := append([]float64(nil), feats...)
		if extraCols == 1 {
			row = append(row, math.Log1p(e))
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
		ds.Censored = append(ds.Censored, cens)
	}
	if grid == nil {
		for _, r := range rows {
			add(r.feats, 0, r.runtime, r.cens)
		}
	} else {
		for _, r := range rows {
			for _, e := range grid {
				if r.runtime >= e {
					add(r.feats, e, r.runtime, r.cens)
				}
			}
		}
	}
	// Subsample deterministically if over budget.
	if len(ds.X) > cfg.MaxTrainRows {
		rng := dist.NewRNG(cfg.Seed + 99)
		idx := rng.Perm(len(ds.X))[:cfg.MaxTrainRows]
		sort.Ints(idx)
		sub := &ml.Dataset{}
		for _, i := range idx {
			sub.X = append(sub.X, ds.X[i])
			sub.Y = append(sub.Y, ds.Y[i])
			sub.Censored = append(sub.Censored, ds.Censored[i])
		}
		ds = sub
	}
	return ds
}

// newModel constructs a fresh model by family name.
func newModel(name string, seed uint64) (ml.Model, error) {
	switch name {
	case "LR":
		return &ml.LinearRegression{LogTarget: true, Ridge: 1e-3}, nil
	case "MLP":
		return &ml.MLP{Hidden: []int{32, 16}, Epochs: 60, Batch: 64, Seed: seed}, nil
	case "XGBoost":
		return &ml.GBRT{Trees: 120, Depth: 4, Subsample: 0.8, Seed: seed}, nil
	case "Tobit":
		return &ml.Tobit{Epochs: 400, PredictQuantile: 0.6}, nil
	}
	return nil, fmt.Errorf("predict: unknown model %q", name)
}

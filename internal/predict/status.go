package predict

import (
	"fmt"
	"math"

	"crosssched/internal/ml"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// StatusConfig parameterizes the status-prediction experiment — the
// extension the paper's Section V-C sketches: once a job has run e
// seconds, predict its final status (Passed/Failed/Killed) from the
// user's history.
type StatusConfig struct {
	// ElapsedFractions of the mean runtime used as prediction points
	// (default 1/8, 1/4, 1/2, matching the runtime experiment).
	ElapsedFractions []float64
	// TrainFrac is the time-ordered split (default 0.7).
	TrainFrac float64
	// Seed drives the softmax model.
	Seed uint64
}

// StatusVariant is one elapsed threshold's evaluation for all predictors.
type StatusVariant struct {
	ElapsedSeconds float64
	// Prior predicts each user's majority status ignoring elapsed time.
	Prior ml.ClassificationResult
	// Survival is the per-user empirical P(status | runtime > elapsed).
	Survival ml.ClassificationResult
	// Softmax is logistic regression on features + elapsed.
	Softmax ml.ClassificationResult
}

// StatusResult is the full experiment output for one system.
type StatusResult struct {
	System   string
	Variants []StatusVariant
	TestJobs int
}

// RunStatus executes the status-prediction experiment on a trace.
func RunStatus(tr *trace.Trace, cfg StatusConfig) (*StatusResult, error) {
	if len(cfg.ElapsedFractions) == 0 {
		cfg.ElapsedFractions = []float64{1.0 / 8, 1.0 / 4, 1.0 / 2}
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	if tr.Len() < 100 {
		return nil, fmt.Errorf("predict: trace too small (%d jobs)", tr.Len())
	}
	meanRun := stats.Mean(tr.Runtimes())
	cut := int(float64(tr.Len()) * cfg.TrainFrac)

	// Per-user priors and survival model from the training prefix.
	surv := ml.NewStatusSurvival(3)
	priorCounts := map[int][3]int{}
	for i := 0; i < cut; i++ {
		j := &tr.Jobs[i]
		surv.Observe(j.User, j.Run, int(j.Status))
		c := priorCounts[j.User]
		c[j.Status]++
		priorCounts[j.User] = c
	}
	surv.Freeze()
	var globalPrior [3]int
	for _, c := range priorCounts {
		for s := 0; s < 3; s++ {
			globalPrior[s] += c[s]
		}
	}
	majority := func(user int) int {
		c, ok := priorCounts[user]
		if !ok {
			c = globalPrior
		}
		best := 0
		for s := 1; s < 3; s++ {
			if c[s] > c[best] {
				best = s
			}
		}
		return best
	}

	res := &StatusResult{System: tr.System.Name}
	rows := buildFeatures(tr)

	for _, f := range cfg.ElapsedFractions {
		e := f * meanRun
		// Softmax trained with the elapsed feature over a threshold grid
		// (same expansion idea as the runtime models).
		var trainX [][]float64
		var trainY []int
		for _, tau := range []float64{0, e / 2, e} {
			for i := 0; i < cut; i++ {
				if tr.Jobs[i].Run >= tau {
					row := append(append([]float64(nil), rows[i].feats...), math.Log1p(tau))
					trainX = append(trainX, row)
					trainY = append(trainY, int(tr.Jobs[i].Status))
				}
			}
		}
		sm := &ml.Softmax{Classes: 3, Epochs: 150}
		if err := sm.FitClasses(trainX, trainY); err != nil {
			return nil, err
		}

		var actual, prior, survival, softmax []int
		testCount := 0
		for i := cut; i < tr.Len(); i++ {
			j := &tr.Jobs[i]
			if j.Run < e {
				continue
			}
			testCount++
			actual = append(actual, int(j.Status))
			prior = append(prior, majority(j.User))
			survival = append(survival, surv.PredictClass(j.User, e))
			row := append(append([]float64(nil), rows[i].feats...), math.Log1p(e))
			softmax = append(softmax, sm.PredictClass(row))
		}
		res.Variants = append(res.Variants, StatusVariant{
			ElapsedSeconds: e,
			Prior:          ml.EvaluateClasses(actual, prior, 3),
			Survival:       ml.EvaluateClasses(actual, survival, 3),
			Softmax:        ml.EvaluateClasses(actual, softmax, 3),
		})
		if testCount > res.TestJobs {
			res.TestJobs = testCount
		}
	}
	return res, nil
}

package predict

import (
	"testing"

	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// smallTrace generates a compact Philly-like workload for fast tests.
func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := synth.Philly(2)
	tr, err := p.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var cachedTrace *trace.Trace
var cachedResult *Result

func runOnce(t *testing.T) (*trace.Trace, *Result) {
	t.Helper()
	if cachedResult != nil {
		return cachedTrace, cachedResult
	}
	tr := smallTrace(t)
	res, err := Run(tr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cachedTrace, cachedResult = tr, res
	return tr, res
}

func TestRunRejectsTinyTrace(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 4})
	if _, err := Run(tr, Config{}); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	tr := smallTrace(t)
	if _, err := Run(tr, Config{Models: []string{"SVM"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunProducesAllModelsAndThresholds(t *testing.T) {
	_, res := runOnce(t)
	if len(res.Models) != len(ModelNames) {
		t.Fatalf("models: %d want %d", len(res.Models), len(ModelNames))
	}
	for _, mr := range res.Models {
		if len(mr.Variants) != 3 {
			t.Fatalf("%s: %d variants want 3", mr.Model, len(mr.Variants))
		}
		prev := 0.0
		for _, v := range mr.Variants {
			if v.ElapsedSeconds <= prev {
				t.Fatalf("%s: thresholds not increasing", mr.Model)
			}
			prev = v.ElapsedSeconds
			if v.Baseline.N == 0 || v.WithElapsed.N == 0 {
				t.Fatalf("%s: empty evaluation at %v", mr.Model, v.ElapsedSeconds)
			}
			if v.Baseline.N != v.WithElapsed.N {
				t.Fatalf("%s: variants evaluated on different sets", mr.Model)
			}
			for _, ev := range []struct {
				n string
				e float64
			}{
				{"baseline acc", v.Baseline.AvgAccuracy},
				{"elapsed acc", v.WithElapsed.AvgAccuracy},
				{"baseline under", v.Baseline.UnderestimateRate},
				{"elapsed under", v.WithElapsed.UnderestimateRate},
			} {
				if ev.e < 0 || ev.e > 1 {
					t.Fatalf("%s: %s = %v out of [0,1]", mr.Model, ev.n, ev.e)
				}
			}
		}
	}
}

// TestElapsedReducesUnderestimates verifies the paper's headline claim:
// adding the elapsed-time feature reduces the underestimate rate for every
// model (Figure 12 top), on average across thresholds.
func TestElapsedReducesUnderestimates(t *testing.T) {
	_, res := runOnce(t)
	for _, mr := range res.Models {
		var baseSum, withSum float64
		for _, v := range mr.Variants {
			baseSum += v.Baseline.UnderestimateRate
			withSum += v.WithElapsed.UnderestimateRate
		}
		if withSum >= baseSum {
			t.Errorf("%s: elapsed did not reduce underestimates (base %.3f vs with %.3f)",
				mr.Model, baseSum/3, withSum/3)
		}
	}
}

// TestElapsedKeepsAccuracyComparable verifies Figure 12 bottom: accuracy
// with the elapsed feature is comparable or better (allow a small
// regression margin per model).
func TestElapsedKeepsAccuracyComparable(t *testing.T) {
	_, res := runOnce(t)
	for _, mr := range res.Models {
		for _, v := range mr.Variants {
			if v.WithElapsed.AvgAccuracy < v.Baseline.AvgAccuracy-0.12 {
				t.Errorf("%s@%.0fs: accuracy dropped too much: %.3f -> %.3f",
					mr.Model, v.ElapsedSeconds,
					v.Baseline.AvgAccuracy, v.WithElapsed.AvgAccuracy)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	tr := smallTrace(t)
	a, err := Run(tr, Config{Seed: 3, Models: []string{"LR", "XGBoost"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Config{Seed: 3, Models: []string{"LR", "XGBoost"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Models {
		for k := range a.Models[i].Variants {
			va, vb := a.Models[i].Variants[k], b.Models[i].Variants[k]
			if va.WithElapsed != vb.WithElapsed || va.Baseline != vb.Baseline {
				t.Fatalf("nondeterministic results for %s", a.Models[i].Model)
			}
		}
	}
}

func TestBuildFeaturesShape(t *testing.T) {
	tr := smallTrace(t)
	rows := buildFeatures(tr)
	if len(rows) != tr.Len() {
		t.Fatalf("rows %d want %d", len(rows), tr.Len())
	}
	for i, r := range rows {
		if len(r.feats) != 6 {
			t.Fatalf("row %d width %d want 6", i, len(r.feats))
		}
	}
	// first job of any user has zero history features
	seen := map[int]bool{}
	for i, r := range rows {
		if !seen[r.user] {
			if r.feats[0] != 0 || r.feats[1] != 0 || r.feats[2] != 0 {
				t.Fatalf("row %d: first job of user %d has nonzero history", i, r.user)
			}
			seen[r.user] = true
		}
	}
}

func TestDatasetSubsampleCap(t *testing.T) {
	tr := smallTrace(t)
	rows := buildFeatures(tr)
	cfg := Config{MaxTrainRows: 500, Seed: 1}
	ds := datasetFrom(rows, []float64{0, 10, 100}, cfg, 1)
	if ds.Len() > 500 {
		t.Fatalf("subsample cap violated: %d", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != 7 {
		t.Fatalf("elapsed column missing: dim %d", ds.Dim())
	}
}

// TestHourOfDayNormalized: the hour-of-day feature must land in [0, 24)
// for every submit offset, including the negative submits of jobs carried
// in from before the trace window (math.Mod keeps the dividend's sign).
func TestHourOfDayNormalized(t *testing.T) {
	cases := []struct {
		submit float64
		start  int
		want   float64
	}{
		{0, 0, 0},
		{3600, 0, 1},
		{3600, 8, 9},
		{25 * 3600, 0, 1}, // wraps past midnight
		{-3600, 0, 23},    // negative submit wraps backward
		{-3600, 8, 7},
		{-30 * 3600, 3, 21}, // more than a day before the window
	}
	for _, tc := range cases {
		if got := hourOfDay(tc.submit, tc.start); got != tc.want {
			t.Fatalf("hourOfDay(%v, %d) = %v, want %v", tc.submit, tc.start, got, tc.want)
		}
	}
	for s := -100.0; s < 100; s += 0.7 {
		if h := hourOfDay(s*3600+0.123, 5); h < 0 || h >= 24 {
			t.Fatalf("hourOfDay(%v, 5) = %v out of [0,24)", s*3600+0.123, h)
		}
	}
}

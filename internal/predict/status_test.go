package predict

import (
	"testing"

	"crosssched/internal/trace"
)

var statusCached *StatusResult

func statusRun(t *testing.T) *StatusResult {
	t.Helper()
	if statusCached != nil {
		return statusCached
	}
	tr := smallTrace(t)
	res, err := RunStatus(tr, StatusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	statusCached = res
	return res
}

func TestRunStatusRejectsTiny(t *testing.T) {
	tr := trace.New(trace.System{Name: "T", TotalCores: 4})
	if _, err := RunStatus(tr, StatusConfig{}); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

func TestRunStatusStructure(t *testing.T) {
	res := statusRun(t)
	if len(res.Variants) != 3 {
		t.Fatalf("variants %d want 3", len(res.Variants))
	}
	prev := 0.0
	for _, v := range res.Variants {
		if v.ElapsedSeconds <= prev {
			t.Fatal("thresholds not increasing")
		}
		prev = v.ElapsedSeconds
		for name, r := range map[string]float64{
			"prior": v.Prior.Accuracy, "survival": v.Survival.Accuracy, "softmax": v.Softmax.Accuracy,
		} {
			if r < 0 || r > 1 {
				t.Fatalf("%s accuracy %v out of range", name, r)
			}
		}
		if v.Prior.N == 0 || v.Prior.N != v.Survival.N || v.Prior.N != v.Softmax.N {
			t.Fatalf("evaluation sets differ: %d %d %d", v.Prior.N, v.Survival.N, v.Softmax.N)
		}
	}
}

// TestElapsedImprovesStatusPrediction verifies the paper's Section V-C
// intuition: conditioning on elapsed time beats the per-user prior for
// status prediction, and the advantage exists at every threshold.
func TestElapsedImprovesStatusPrediction(t *testing.T) {
	res := statusRun(t)
	var priorSum, survSum float64
	for _, v := range res.Variants {
		priorSum += v.Prior.Accuracy
		survSum += v.Survival.Accuracy
	}
	if survSum <= priorSum {
		t.Errorf("survival predictor (avg acc %.3f) did not beat the prior (%.3f)",
			survSum/3, priorSum/3)
	}
}

// TestSurvivalRulesOutFailuresLate: at the largest threshold, Failed jobs
// are nearly impossible (failures die early), so the survival predictor
// should essentially never predict Failed.
func TestSurvivalRulesOutFailuresLate(t *testing.T) {
	res := statusRun(t)
	last := res.Variants[len(res.Variants)-1]
	predictedFailed := 0
	for a := 0; a < 3; a++ {
		predictedFailed += last.Survival.Confusion[a][int(trace.Failed)]
	}
	frac := float64(predictedFailed) / float64(last.Survival.N)
	if frac > 0.05 {
		t.Errorf("survival predictor still predicts Failed for %.1f%% of long-elapsed jobs", 100*frac)
	}
}

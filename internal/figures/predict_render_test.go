package figures

import (
	"strings"
	"testing"

	"crosssched/internal/ml"
	"crosssched/internal/predict"
)

func TestRenderFig12(t *testing.T) {
	r := &predict.Result{
		System:      "Demo",
		MeanRuntime: 600,
		Fractions:   []float64{0.25},
		TestJobs:    100,
		Models: []predict.ModelResult{{
			Model: "LR",
			Variants: []predict.VariantResult{{
				ElapsedSeconds: 150,
				Baseline:       ml.EvalResult{N: 100, AvgAccuracy: 0.5, UnderestimateRate: 0.9},
				WithElapsed:    ml.EvalResult{N: 100, AvgAccuracy: 0.6, UnderestimateRate: 0.4},
			}},
		}},
	}
	out := RenderFig12(r)
	for _, want := range []string{"Demo", "LR", "90.0%", "40.0%", "60.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderStatusPrediction(t *testing.T) {
	r := &predict.StatusResult{
		System:   "Demo",
		TestJobs: 42,
		Variants: []predict.StatusVariant{{
			ElapsedSeconds: 120,
			Prior:          ml.ClassificationResult{N: 42, Accuracy: 0.5, Recall: []float64{0.9, 0, 0.3}},
			Survival:       ml.ClassificationResult{N: 42, Accuracy: 0.7, Recall: []float64{0.95, 0, 0.4}},
			Softmax:        ml.ClassificationResult{N: 42, Accuracy: 0.6, Recall: []float64{0.9, 0, 0.2}},
		}},
	}
	out := RenderStatusPrediction(r)
	for _, want := range []string{"Demo", "70.0%", "survival", "prior"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package figures

import (
	"fmt"
	"strings"
)

// DatasetInfo is one row of the paper's full Table I: the catalog of
// candidate public traces and the selection criteria that admitted five of
// them. The metadata is static (it describes the real datasets); for the
// five selected systems the synthetic job count from the current suite is
// attached alongside.
type DatasetInfo struct {
	Name        string
	Affiliation string
	Years       string
	JobCount    string // as reported by the paper
	Nodes       string
	Cores       string
	GPUs        string
	LargeScale  bool
	UserInfo    bool
	JobStatus   bool
	Consistent  bool
	// Excluded explains why the paper dropped the dataset ("" = selected).
	Excluded string
	// SynthJobs is the generated job count for selected systems (0 for
	// excluded ones).
	SynthJobs int
}

// Selected reports whether the dataset survived the paper's filters.
func (d DatasetInfo) Selected() bool { return d.Excluded == "" }

// datasetCatalog mirrors the paper's Table I.
var datasetCatalog = []DatasetInfo{
	{Name: "Mira", Affiliation: "ALCF", Years: "2013-2019", JobCount: "750,000",
		Nodes: "49,152", Cores: "786,432", GPUs: "-",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: true},
	{Name: "Theta", Affiliation: "ALCF", Years: "2017-2023", JobCount: "522,858",
		Nodes: "4,392", Cores: "281,088", GPUs: "-",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: true},
	{Name: "BlueWaters", Affiliation: "NCSA", Years: "2013-2019", JobCount: "10.5M",
		Nodes: "26,864", Cores: "396,000", GPUs: "4,228",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: true},
	{Name: "ThetaGPU", Affiliation: "ALCF", Years: "2020-2023", JobCount: "135,975",
		Nodes: "24", Cores: "-", GPUs: "192",
		LargeScale: false, UserInfo: true, JobStatus: true, Consistent: true,
		Excluded: "cluster size (24 nodes)"},
	{Name: "Supercloud", Affiliation: "MIT", Years: "2021-01~2021-10", JobCount: "395,914",
		Nodes: "704", Cores: "32,000", GPUs: "448",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: false,
		Excluded: "inconsistent info (jobs exceed node count)"},
	{Name: "Philly", Affiliation: "Microsoft", Years: "2017-08~2017-12", JobCount: "117,325",
		Nodes: "552", Cores: "-", GPUs: "2,490",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: true},
	{Name: "Helios", Affiliation: "SenseTime", Years: "2020-04~2020-09", JobCount: "3.3M",
		Nodes: "802", Cores: "-", GPUs: "6,416",
		LargeScale: true, UserInfo: true, JobStatus: true, Consistent: true},
	{Name: "Elasticflow", Affiliation: "Microsoft", Years: "2021-03~2021-05", JobCount: "69,351",
		Nodes: "-", Cores: "-", GPUs: "-",
		LargeScale: false, UserInfo: false, JobStatus: false, Consistent: true,
		Excluded: "job count; missing user/status info"},
	{Name: "Alibaba", Affiliation: "Alibaba", Years: "2023", JobCount: "8,152",
		Nodes: "1,523", Cores: "107,018", GPUs: "6,212",
		LargeScale: false, UserInfo: true, JobStatus: true, Consistent: true,
		Excluded: "job count (8,152)"},
}

// TableIFull returns the paper's complete dataset catalog, with synthetic
// job counts attached to the selected systems from this suite.
func (s *Suite) TableIFull() ([]DatasetInfo, error) {
	out := make([]DatasetInfo, len(datasetCatalog))
	copy(out, datasetCatalog)
	for i := range out {
		if !out[i].Selected() {
			continue
		}
		tr, err := s.Trace(out[i].Name)
		if err != nil {
			return nil, err
		}
		out[i].SynthJobs = tr.Len()
	}
	return out, nil
}

// RenderTableIFull renders the catalog with selection marks.
func RenderTableIFull(rows []DatasetInfo) string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	t := &tableWriter{header: []string{
		"Dataset", "Affil.", "Years", "Jobs(real)", "Jobs(synth)",
		"Nodes", "Cores", "GPUs", "Large", "Users", "Status", "Consist", "Selected",
	}}
	for _, r := range rows {
		sel := "selected"
		if !r.Selected() {
			sel = "excluded: " + r.Excluded
		}
		synth := "-"
		if r.SynthJobs > 0 {
			synth = fmt.Sprint(r.SynthJobs)
		}
		t.addRow(r.Name, r.Affiliation, r.Years, r.JobCount, synth,
			r.Nodes, r.Cores, r.GPUs,
			mark(r.LargeScale), mark(r.UserInfo), mark(r.JobStatus), mark(r.Consistent),
			sel)
	}
	var b strings.Builder
	b.WriteString("Table I (full): candidate public traces and selection criteria\n")
	b.WriteString(t.String())
	b.WriteString("\nSelection rule: large scale AND user info AND job status AND consistent\n")
	return b.String()
}

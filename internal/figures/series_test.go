package figures

import (
	"strings"
	"testing"

	"crosssched/internal/stats"
)

func TestRenderCDFSeries(t *testing.T) {
	a := stats.NewECDF([]float64{1, 10, 100})
	b := stats.NewECDF([]float64{5, 50, 500})
	out := RenderCDFSeries("demo", []string{"A", "B"}, []*stats.ECDF{a, b}, 1, 1000, 4)
	if !strings.Contains(out, "demo (CDF series)") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + column header + separator + 4 grid rows
	if len(lines) != 7 {
		t.Fatalf("lines %d want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "1.000") {
		t.Fatalf("last row should reach 1.0:\n%s", out)
	}
}

func TestRenderFig1Series(t *testing.T) {
	out, err := RenderFig1Series(testSuite, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1(a)", "Figure 1(b)", "Figure 1(c)", "Helios"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series missing %q", want)
		}
	}
}

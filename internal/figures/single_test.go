package figures

import (
	"strings"
	"testing"
)

func TestRenderSinglePartitioned(t *testing.T) {
	tr, err := testSuite.Trace("Philly")
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSingle(tr)
	for _, want := range []string{
		"Figure 1(a)", "Figure 2", "Figure 3", "virtual-cluster stranding",
		"Figure 6", "Figure 8", "Figure 10", "Figure 11", "per-user adaptation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("single render missing %q", want)
		}
	}
}

func TestRenderSingleUnpartitionedOmitsVCWaste(t *testing.T) {
	tr, err := testSuite.Trace("Theta")
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSingle(tr)
	if strings.Contains(out, "virtual-cluster stranding") {
		t.Fatal("unpartitioned trace should not include the VC supplement")
	}
}

func TestPrewarm(t *testing.T) {
	s := NewSuite(Config{Days: 0.5, SimDays: 0.5, Seed: 9})
	if err := s.Prewarm(); err != nil {
		t.Fatal(err)
	}
	// all traces must now be cached (same pointers returned)
	for _, name := range s.Systems() {
		a, err := s.Trace(name)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := s.Trace(name)
		if a != b {
			t.Fatalf("%s: prewarmed trace not cached", name)
		}
	}
}

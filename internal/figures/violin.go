package figures

import (
	"fmt"
	"math"
	"strings"

	"crosssched/internal/analysis"
	"crosssched/internal/stats"
)

// RenderViolin draws a horizontal ASCII violin: density across a log-x
// axis, with quartile markers — the text analog of the paper's violin
// panels (Figure 1(a) bottom, Figure 11).
func RenderViolin(label string, v stats.Violin, width int) string {
	if len(v.Grid) == 0 || width < 16 {
		return fmt.Sprintf("%s: (empty)\n", label)
	}
	// resample density onto `width` columns across the grid range
	lo, hi := v.Grid[0], v.Grid[len(v.Grid)-1]
	if lo <= 0 {
		lo = 1e-9
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	if lhi <= llo {
		lhi = llo + 1
	}
	cols := make([]float64, width)
	maxD := 0.0
	for i, g := range v.Grid {
		if g <= 0 {
			continue
		}
		pos := int((math.Log10(g) - llo) / (lhi - llo) * float64(width-1))
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		if v.Density[i] > cols[pos] {
			cols[pos] = v.Density[i]
		}
		if v.Density[i] > maxD {
			maxD = v.Density[i]
		}
	}
	levels := []byte(" .:-=+*#%@")
	row := make([]byte, width)
	for i := range cols {
		idx := 0
		if maxD > 0 {
			idx = int(cols[i] / maxD * float64(len(levels)-1))
		}
		row[i] = levels[idx]
	}
	// quartile markers overlay
	mark := func(x float64, ch byte) {
		if x <= 0 {
			return
		}
		pos := int((math.Log10(x) - llo) / (lhi - llo) * float64(width-1))
		if pos >= 0 && pos < width {
			row[pos] = ch
		}
	}
	mark(v.Summary.P25, '(')
	mark(v.Summary.P75, ')')
	mark(v.Summary.P50, '|')
	return fmt.Sprintf("%-14s [%s]  p50=%s n=%d\n", label, string(row),
		fmtDur(v.Summary.P50), v.Summary.N)
}

// RenderFig1Violins renders runtime violins for all systems (Figure 1(a)
// bottom).
func RenderFig1Violins(gs []analysis.Geometry) string {
	var b strings.Builder
	b.WriteString("Figure 1(a) bottom: runtime violins (log axis; ( | ) = quartiles)\n")
	for _, g := range gs {
		b.WriteString(RenderViolin(g.System, g.RuntimeViolin, 60))
	}
	return b.String()
}

// RenderFig11Violins renders per-user per-status violins (Figure 11 proper).
func RenderFig11Violins(us []analysis.UserStatusRuntimes) string {
	var b strings.Builder
	b.WriteString("Figure 11: per-user runtime violins by status (log axis)\n")
	statusNames := [3]string{"passed", "failed", "killed"}
	for _, u := range us {
		for _, p := range u.Users {
			fmt.Fprintf(&b, "%s U%d (%d jobs):\n", u.System, p.User, p.Jobs)
			for st := 0; st < 3; st++ {
				if p.Counts[st] == 0 {
					continue
				}
				b.WriteString("  " + RenderViolin(statusNames[st], p.Violins[st], 50))
			}
		}
	}
	return b.String()
}

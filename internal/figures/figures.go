package figures

import (
	"crosssched/internal/analysis"
	"crosssched/internal/predict"
	"crosssched/internal/trace"
)

// TableIRow is one system's overview entry (paper Table I).
type TableIRow struct {
	System string
	Kind   string
	Jobs   int
	Cores  int // schedulable capacity in the trace's resource unit
	Nodes  int // derived where CoresPerNode is known
	VCs    int
	Users  int
	Days   float64
}

// TableI produces the trace-overview rows.
func (s *Suite) TableI() ([]TableIRow, error) {
	var rows []TableIRow
	err := s.eachTrace(func(name string, tr *trace.Trace) error {
		nodes := 0
		if tr.System.CoresPerNode > 0 {
			nodes = tr.System.TotalCores / tr.System.CoresPerNode
		}
		rows = append(rows, TableIRow{
			System: name,
			Kind:   tr.System.Kind.String(),
			Jobs:   tr.Len(),
			Cores:  tr.System.TotalCores,
			Nodes:  nodes,
			VCs:    tr.System.VirtualClusters,
			Users:  len(tr.Users()),
			Days:   s.cfg.Days,
		})
		return nil
	})
	return rows, err
}

// Fig1 computes job geometries (runtime, arrival, allocation) per system.
func (s *Suite) Fig1() ([]analysis.Geometry, error) {
	var out []analysis.Geometry
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeGeometry(tr))
		return nil
	})
	return out, err
}

// Fig2 computes core-hour domination per system.
func (s *Suite) Fig2() ([]analysis.CoreHourShares, error) {
	var out []analysis.CoreHourShares
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeCoreHours(tr))
		return nil
	})
	return out, err
}

// Fig3to5 computes the scheduling-outcome panels (utilization, waits,
// wait-vs-geometry) per system from the recorded waits.
func (s *Suite) Fig3to5() ([]analysis.Scheduling, error) {
	var out []analysis.Scheduling
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeScheduling(tr))
		return nil
	})
	return out, err
}

// Fig3VCWaste computes the cross-VC stranding analysis for partitioned
// systems (the paper's explanation of Philly's idle-GPUs-with-queues
// pathology in the Figure 3/4 discussion).
func (s *Suite) Fig3VCWaste() ([]analysis.VCWaste, error) {
	var out []analysis.VCWaste
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		if tr.System.VirtualClusters > 1 {
			out = append(out, analysis.AnalyzeVCWaste(tr))
		}
		return nil
	})
	return out, err
}

// Fig6and7 computes the failure characterization per system.
func (s *Suite) Fig6and7() ([]analysis.Failures, error) {
	var out []analysis.Failures
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeFailures(tr))
		return nil
	})
	return out, err
}

// Fig8 computes per-user resource-configuration group coverage.
func (s *Suite) Fig8() ([]analysis.UserGroups, error) {
	var out []analysis.UserGroups
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeUserGroups(tr, 10, 20, 50))
		return nil
	})
	return out, err
}

// Fig9and10 computes the queue-pressure behavior panels.
func (s *Suite) Fig9and10() ([]analysis.QueueBehavior, error) {
	var out []analysis.QueueBehavior
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeQueueBehavior(tr))
		return nil
	})
	return out, err
}

// Fig9and10PerUser computes the per-user adaptation correlations behind
// the queue-pressure figures ("users tend to submit jobs needing less
// resources" is a statement about users, not just the aggregate).
func (s *Suite) Fig9and10PerUser() ([]analysis.UserAdaptation, error) {
	var out []analysis.UserAdaptation
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeUserAdaptation(tr, 20, 50))
		return nil
	})
	return out, err
}

// Fig11 computes per-user runtime-by-status profiles for the top 3 users
// (the paper shows Blue Waters, Philly, Helios, and Mira).
func (s *Suite) Fig11() ([]analysis.UserStatusRuntimes, error) {
	var out []analysis.UserStatusRuntimes
	err := s.eachTrace(func(_ string, tr *trace.Trace) error {
		out = append(out, analysis.AnalyzeUserStatusRuntimes(tr, 3))
		return nil
	})
	return out, err
}

// Fig12 runs the runtime-prediction experiment on one system's trace.
func (s *Suite) Fig12(system string) (*predict.Result, error) {
	tr, err := s.Trace(system)
	if err != nil {
		return nil, err
	}
	return predict.Run(tr, s.predictConfig())
}

// StatusPrediction runs the final-status prediction extension on one
// system's trace (Section V-C made concrete).
func (s *Suite) StatusPrediction(system string) (*predict.StatusResult, error) {
	tr, err := s.Trace(system)
	if err != nil {
		return nil, err
	}
	return predict.RunStatus(tr, predict.StatusConfig{Seed: s.cfg.Seed})
}

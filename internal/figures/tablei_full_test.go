package figures

import (
	"strings"
	"testing"
)

func TestTableIFullCatalog(t *testing.T) {
	rows, err := testSuite.TableIFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows %d want 9 (paper's full Table I)", len(rows))
	}
	selected, excluded := 0, 0
	for _, r := range rows {
		if r.Selected() {
			selected++
			if r.SynthJobs <= 0 {
				t.Fatalf("%s: selected but no synthetic jobs", r.Name)
			}
			if !(r.LargeScale && r.UserInfo && r.JobStatus && r.Consistent) {
				t.Fatalf("%s: selected but fails a criterion", r.Name)
			}
		} else {
			excluded++
			if r.SynthJobs != 0 {
				t.Fatalf("%s: excluded but has synthetic jobs", r.Name)
			}
			if r.LargeScale && r.UserInfo && r.JobStatus && r.Consistent {
				t.Fatalf("%s: excluded but passes every criterion", r.Name)
			}
		}
	}
	if selected != 5 || excluded != 4 {
		t.Fatalf("selected=%d excluded=%d want 5/4", selected, excluded)
	}
}

func TestTableIFullRender(t *testing.T) {
	rows, err := testSuite.TableIFull()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTableIFull(rows)
	for _, want := range []string{
		"Supercloud", "inconsistent", "Elasticflow", "Alibaba",
		"Selection rule", "selected",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDispatchTableIFull(t *testing.T) {
	out, err := testSuite.Render("table1full", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ThetaGPU") {
		t.Fatal("table1full dispatch missing content")
	}
}

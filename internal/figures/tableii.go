package figures

import (
	"fmt"

	"crosssched/internal/sim"
	"crosssched/internal/trace"
)

// TableIIRow is one trace's relaxed-vs-adaptive comparison (paper Table
// II). Violations are counts of reserved jobs whose start slipped past
// their first promise; ViolationDelay is the summed slip in seconds.
type TableIIRow struct {
	System string

	RelaxedWait, AdaptiveWait float64
	RelaxedBsld, AdaptiveBsld float64
	RelaxedUtil, AdaptiveUtil float64
	RelaxedViol, AdaptiveViol int
	RelaxedViolDelay          float64
	AdaptiveViolDelay         float64
}

// WaitImprovement returns the relative wait change (positive = adaptive
// better).
func (r TableIIRow) WaitImprovement() float64 {
	return improvement(r.RelaxedWait, r.AdaptiveWait)
}

// BsldImprovement returns the relative bounded-slowdown change.
func (r TableIIRow) BsldImprovement() float64 {
	return improvement(r.RelaxedBsld, r.AdaptiveBsld)
}

// UtilImprovement returns the relative utilization change (positive =
// adaptive higher).
func (r TableIIRow) UtilImprovement() float64 {
	return -improvement(r.RelaxedUtil, r.AdaptiveUtil)
}

// ViolImprovement returns the relative violation-count reduction.
func (r TableIIRow) ViolImprovement() float64 {
	return improvement(float64(r.RelaxedViol), float64(r.AdaptiveViol))
}

// improvement returns (base-new)/base, guarding zero baselines.
func improvement(base, new float64) float64 {
	if base == 0 {
		if new == 0 {
			return 0
		}
		return -1
	}
	return (base - new) / base
}

// TableIISystems are the traces with walltimes (backfilling needs them);
// the DL traces carry none, exactly as in the paper.
var TableIISystems = []string{"BlueWaters", "Mira", "Theta"}

// TableII re-schedules the walltime-bearing traces under FCFS with relaxed
// backfilling (10%) and the paper's adaptive relaxed backfilling, and
// reports the four metrics.
func (s *Suite) TableII() ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, name := range TableIISystems {
		found := false
		for _, cfgName := range s.cfg.Systems {
			if cfgName == name {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		tr, err := s.SimTrace(name)
		if err != nil {
			return nil, err
		}
		row, err := CompareRelaxedAdaptive(tr)
		if err != nil {
			return nil, fmt.Errorf("figures: table II %s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// CompareRelaxedAdaptive runs both backfilling variants on one trace. The
// adaptive variant normalizes queue pressure by the maximum queue length
// observed under plain relaxed backfilling — the "historical maximum" in
// the paper's Equation 1.
func CompareRelaxedAdaptive(tr *trace.Trace) (*TableIIRow, error) {
	relaxed, err := sim.Run(tr, relaxedOptions(false))
	if err != nil {
		return nil, err
	}
	adaptiveOpt := relaxedOptions(true)
	adaptiveOpt.MaxQueueLen = relaxed.MaxQueueLen
	adaptive, err := sim.Run(tr, adaptiveOpt)
	if err != nil {
		return nil, err
	}
	return &TableIIRow{
		System:            tr.System.Name,
		RelaxedWait:       relaxed.AvgWait,
		AdaptiveWait:      adaptive.AvgWait,
		RelaxedBsld:       relaxed.AvgBsld,
		AdaptiveBsld:      adaptive.AvgBsld,
		RelaxedUtil:       relaxed.Utilization,
		AdaptiveUtil:      adaptive.Utilization,
		RelaxedViol:       relaxed.Violations,
		AdaptiveViol:      adaptive.Violations,
		RelaxedViolDelay:  relaxed.ViolationDelay,
		AdaptiveViolDelay: adaptive.ViolationDelay,
	}, nil
}

package figures

import (
	"strings"

	"crosssched/internal/analysis"
	"crosssched/internal/trace"
)

// RenderSingle renders every single-trace analysis for one (typically
// user-supplied) trace — the full per-system view of Figures 1-11 that
// cmd/lumos -input -full produces.
func RenderSingle(tr *trace.Trace) string {
	var b strings.Builder
	gs := []analysis.Geometry{analysis.AnalyzeGeometry(tr)}
	b.WriteString(RenderFig1(gs))
	b.WriteString("\n")
	b.WriteString(RenderFig1Violins(gs))
	b.WriteString("\n")
	b.WriteString(RenderFig2([]analysis.CoreHourShares{analysis.AnalyzeCoreHours(tr)}))
	b.WriteString("\n")
	b.WriteString(RenderFig3to5([]analysis.Scheduling{analysis.AnalyzeScheduling(tr)}))
	if tr.System.VirtualClusters > 1 {
		b.WriteString("\n")
		b.WriteString(RenderVCWaste([]analysis.VCWaste{analysis.AnalyzeVCWaste(tr)}))
	}
	b.WriteString("\n")
	b.WriteString(RenderFig6and7([]analysis.Failures{analysis.AnalyzeFailures(tr)}))
	b.WriteString("\n")
	b.WriteString(RenderFig8([]analysis.UserGroups{analysis.AnalyzeUserGroups(tr, 10, 20, 50)}))
	b.WriteString("\n")
	b.WriteString(RenderFig9and10([]analysis.QueueBehavior{analysis.AnalyzeQueueBehavior(tr)}))
	b.WriteString("\n")
	b.WriteString(RenderUserAdaptation([]analysis.UserAdaptation{analysis.AnalyzeUserAdaptation(tr, 20, 50)}))
	b.WriteString("\n")
	b.WriteString(RenderFig11([]analysis.UserStatusRuntimes{analysis.AnalyzeUserStatusRuntimes(tr, 3)}))
	return b.String()
}

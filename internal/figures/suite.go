// Package figures regenerates every table and figure in the paper's
// evaluation from the calibrated synthetic traces: Table I (trace
// overview), Figures 1-11 (characterization), Figure 12 (runtime
// prediction), and Table II (adaptive relaxed backfilling). Each entry
// point returns structured data plus a text rendering, and is wired to a
// benchmark in the repository root and to the cmd/ tools.
package figures

import (
	"context"
	"fmt"
	"sync"

	"crosssched/internal/par"
	"crosssched/internal/predict"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// Config scopes a figure suite.
type Config struct {
	// Days is the synthetic trace duration (default 10).
	Days float64
	// SimDays is the duration used for simulator-driven experiments
	// (Table II); shorter by default (4) because re-scheduling congested
	// traces is far more expensive than analyzing them.
	SimDays float64
	// Seed drives every generator and model.
	Seed uint64
	// Systems restricts the system set (default all five).
	Systems []string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Days <= 0 {
		c.Days = 10
	}
	if c.SimDays <= 0 {
		c.SimDays = 8
	}
	if len(c.Systems) == 0 {
		c.Systems = synth.SystemNames
	}
	return c
}

// Suite generates and caches the per-system traces used by the figures.
type Suite struct {
	cfg Config

	mu        sync.Mutex
	traces    map[string]*trace.Trace
	simTraces map[string]*trace.Trace
}

// NewSuite returns a suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:       cfg.withDefaults(),
		traces:    map[string]*trace.Trace{},
		simTraces: map[string]*trace.Trace{},
	}
}

// Systems returns the configured system list.
func (s *Suite) Systems() []string { return s.cfg.Systems }

// Trace returns the cached characterization trace for a system. Safe for
// concurrent use; generation happens outside the lock (a rare racing
// duplicate generation is deterministic and discarded).
func (s *Suite) Trace(name string) (*trace.Trace, error) {
	s.mu.Lock()
	if tr, ok := s.traces[name]; ok {
		s.mu.Unlock()
		return tr, nil
	}
	s.mu.Unlock()
	p, err := synth.ByName(name, s.cfg.Days)
	if err != nil {
		return nil, err
	}
	tr, err := p.Generate(s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.traces[name]; ok {
		return existing, nil
	}
	s.traces[name] = tr
	return tr, nil
}

// SimTrace returns the cached trace used for re-scheduling experiments.
// Sparse-arrival systems (Mira, Theta) get a 4x longer window: their
// simulations are cheap and the extra jobs make violation counts
// statistically meaningful, roughly balancing job counts across systems.
func (s *Suite) SimTrace(name string) (*trace.Trace, error) {
	s.mu.Lock()
	if tr, ok := s.simTraces[name]; ok {
		s.mu.Unlock()
		return tr, nil
	}
	s.mu.Unlock()
	days := s.cfg.SimDays
	if name == "Mira" || name == "Theta" {
		days *= 4
	}
	p, err := synth.ByName(name, days)
	if err != nil {
		return nil, err
	}
	tr, err := p.Generate(s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.simTraces[name]; ok {
		return existing, nil
	}
	s.simTraces[name] = tr
	return tr, nil
}

// Prewarm generates all configured system traces concurrently on the
// shared worker pool (generation is the dominant cost when a suite is first
// used; each system's generator is independent).
func (s *Suite) Prewarm() error {
	return par.ForEach(context.Background(), len(s.cfg.Systems), func(_ context.Context, i int) error {
		_, err := s.Trace(s.cfg.Systems[i])
		return err
	})
}

// eachTrace applies fn over the configured systems in order.
func (s *Suite) eachTrace(fn func(name string, tr *trace.Trace) error) error {
	for _, name := range s.cfg.Systems {
		tr, err := s.Trace(name)
		if err != nil {
			return err
		}
		if err := fn(name, tr); err != nil {
			return fmt.Errorf("figures: %s: %w", name, err)
		}
	}
	return nil
}

// Fig12Config parameterizes the prediction experiment.
func (s *Suite) predictConfig() predict.Config {
	return predict.Config{Seed: s.cfg.Seed}
}

// simOptions builds the simulator options used across Table II variants.
func relaxedOptions(adaptive bool) sim.Options {
	opt := sim.Options{
		Policy:      sim.FCFS,
		Backfill:    sim.Relaxed,
		RelaxFactor: 0.10,
	}
	if adaptive {
		opt.Backfill = sim.AdaptiveRelaxed
	}
	return opt
}

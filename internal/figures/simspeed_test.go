package figures

import (
	"testing"
	"time"
)

func TestSimSpeed(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic timing probe; run with -v")
	}
	s := NewSuite(Config{SimDays: 8, Seed: 1})
	for _, name := range TableIISystems {
		tr, err := s.SimTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		row, err := CompareRelaxedAdaptive(tr)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d jobs, %v, relaxedViol=%d adaptiveViol=%d wait %f->%f util %f->%f",
			name, tr.Len(), time.Since(start), row.RelaxedViol, row.AdaptiveViol,
			row.RelaxedWait, row.AdaptiveWait, row.RelaxedUtil, row.AdaptiveUtil)
	}
}

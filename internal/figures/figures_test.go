package figures

import (
	"strings"
	"testing"
)

// testSuite is a small shared suite so the whole package's tests generate
// traces once.
var testSuite = NewSuite(Config{Days: 3, SimDays: 2, Seed: 11})

func TestTableI(t *testing.T) {
	rows, err := testSuite.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d want 5", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.Jobs <= 0 || r.Cores <= 0 || r.Users <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if byName["Mira"].Cores != 786432 || byName["Mira"].Nodes != 49152 {
		t.Fatalf("Mira row wrong: %+v", byName["Mira"])
	}
	if byName["Philly"].VCs != 14 {
		t.Fatalf("Philly VCs wrong: %+v", byName["Philly"])
	}
	out := RenderTableI(rows)
	for _, want := range []string{"Mira", "Philly", "Table I"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Through11Structure(t *testing.T) {
	gs, err := testSuite.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 5 {
		t.Fatalf("fig1 systems %d", len(gs))
	}
	if !strings.Contains(RenderFig1(gs), "Figure 1(a)") {
		t.Fatal("fig1 render missing header")
	}

	cs, err := testSuite.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		sum := c.BySize[0] + c.BySize[1] + c.BySize[2]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s size shares sum %v", c.System, sum)
		}
	}
	if !strings.Contains(RenderFig2(cs), "core-hour share") {
		t.Fatal("fig2 render missing header")
	}

	ss, err := testSuite.Fig3to5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		if s.Utilization < 0 || s.Utilization > 1.0001 {
			t.Fatalf("%s util %v", s.System, s.Utilization)
		}
	}
	out := RenderFig3to5(ss)
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3-5 render missing %q", want)
		}
	}

	fs, err := testSuite.Fig6and7()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.PassRate() <= 0 || f.PassRate() >= 1 {
			t.Fatalf("%s pass rate %v", f.System, f.PassRate())
		}
	}
	if !strings.Contains(RenderFig6and7(fs), "Figure 7(a)") {
		t.Fatal("fig6-7 render missing header")
	}

	ug, err := testSuite.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ug {
		if g.Users == 0 {
			t.Fatalf("%s: no users qualified for Fig 8", g.System)
		}
	}
	if !strings.Contains(RenderFig8(ug), "top-10") {
		t.Fatal("fig8 render missing header")
	}

	qb, err := testSuite.Fig9and10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderFig9and10(qb), "Figure 10") {
		t.Fatal("fig9-10 render missing header")
	}

	us, err := testSuite.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range us {
		if len(u.Users) == 0 {
			t.Fatalf("%s: no users in Fig 11", u.System)
		}
	}
	if !strings.Contains(RenderFig11(us), "Figure 11") {
		t.Fatal("fig11 render missing header")
	}
}

func TestTableIIStructure(t *testing.T) {
	rows, err := testSuite.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("table II rows %d want 3 (BW, Mira, Theta)", len(rows))
	}
	for _, r := range rows {
		if r.RelaxedUtil <= 0 || r.AdaptiveUtil <= 0 {
			t.Fatalf("%s: zero utilization", r.System)
		}
		if r.RelaxedWait < 0 || r.AdaptiveWait < 0 {
			t.Fatalf("%s: negative wait", r.System)
		}
	}
	out := RenderTableII(rows)
	for _, want := range []string{"Table II", "violation", "BlueWaters"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestImprovementMath(t *testing.T) {
	r := TableIIRow{
		RelaxedWait: 100, AdaptiveWait: 94,
		RelaxedBsld: 40, AdaptiveBsld: 42,
		RelaxedUtil: 0.8, AdaptiveUtil: 0.81,
		RelaxedViol: 100, AdaptiveViol: 51,
	}
	if got := r.WaitImprovement(); got != 0.06 {
		t.Fatalf("wait improvement %v want 0.06", got)
	}
	if got := r.BsldImprovement(); got != -0.05 {
		t.Fatalf("bsld improvement %v want -0.05", got)
	}
	if got := r.ViolImprovement(); got != 0.49 {
		t.Fatalf("violation improvement %v want 0.49", got)
	}
	if got := r.UtilImprovement(); got < 0.012 || got > 0.013 {
		t.Fatalf("util improvement %v want ~0.0125", got)
	}
	zero := TableIIRow{}
	if zero.ViolImprovement() != 0 {
		t.Fatal("zero baseline improvement should be 0")
	}
	zero.AdaptiveViol = 5
	if zero.ViolImprovement() != -1 {
		t.Fatal("zero-to-nonzero should be -1")
	}
}

// TestTableIIAdaptiveReducesViolations is the use-case-2 headline: the
// adaptive mechanism reduces promise violations on every system, without
// collapsing utilization.
func TestTableIIAdaptiveReducesViolations(t *testing.T) {
	rows, err := testSuite.TableII()
	if err != nil {
		t.Fatal(err)
	}
	reducedSomewhere := false
	for _, r := range rows {
		if r.AdaptiveViol > r.RelaxedViol {
			t.Errorf("%s: adaptive increased violations %d -> %d",
				r.System, r.RelaxedViol, r.AdaptiveViol)
		}
		if r.AdaptiveViol < r.RelaxedViol {
			reducedSomewhere = true
		}
		if r.AdaptiveUtil < r.RelaxedUtil*0.9 {
			t.Errorf("%s: adaptive collapsed utilization %v -> %v",
				r.System, r.RelaxedUtil, r.AdaptiveUtil)
		}
	}
	if !reducedSomewhere {
		t.Error("adaptive never reduced violations on any system")
	}
}

func TestRenderDispatch(t *testing.T) {
	for _, name := range []string{"table1", "2", "8"} {
		out, err := testSuite.Render(name, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out == "" {
			t.Fatalf("%s: empty render", name)
		}
	}
	if _, err := testSuite.Render("99", ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]int{0, 0, 0}); got != "..." {
		t.Fatalf("zero sparkline %q", got)
	}
	s := sparkline([]int{0, 5, 10})
	if len(s) != 3 || s[2] != '@' || s[0] != ' ' {
		t.Fatalf("sparkline %q", s)
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-1, "n/a"}, {30, "30s"}, {600, "10.0m"}, {7200, "2.0h"}, {200000, "2.3d"},
	}
	for _, c := range cases {
		if got := fmtDur(c.in); got != c.want {
			t.Fatalf("fmtDur(%v) = %q want %q", c.in, got, c.want)
		}
	}
}

func TestSuiteCachesTraces(t *testing.T) {
	a, err := testSuite.Trace("Helios")
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSuite.Trace("Helios")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace not cached")
	}
	if _, err := testSuite.Trace("Nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

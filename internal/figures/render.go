package figures

import (
	"fmt"
	"sort"
	"strings"

	"crosssched/internal/analysis"
	"crosssched/internal/predict"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// fmtDur renders seconds in a human unit.
func fmtDur(sec float64) string {
	switch {
	case sec < 0:
		return "n/a"
	case sec < 120:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 2*3600:
		return fmt.Sprintf("%.1fm", sec/60)
	case sec < 2*86400:
		return fmt.Sprintf("%.1fh", sec/3600)
	default:
		return fmt.Sprintf("%.1fd", sec/86400)
	}
}

// tableWriter builds aligned text tables.
type tableWriter struct {
	header []string
	rows   [][]string
}

func (t *tableWriter) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// RenderTableI renders the trace overview.
func RenderTableI(rows []TableIRow) string {
	t := &tableWriter{header: []string{
		"System", "Kind", "Jobs", "Cores/GPUs", "Nodes", "VCs", "Users", "Days",
	}}
	for _, r := range rows {
		t.addRow(r.System, r.Kind, fmt.Sprint(r.Jobs), fmt.Sprint(r.Cores),
			fmt.Sprint(r.Nodes), fmt.Sprint(r.VCs), fmt.Sprint(r.Users),
			fmt.Sprintf("%.0f", r.Days))
	}
	return "Table I: synthetic trace overview\n" + t.String()
}

// RenderFig1 renders the geometry panels: quantiles of runtime, arrival
// interval, and requested cores, plus the diurnal profile.
func RenderFig1(gs []analysis.Geometry) string {
	var b strings.Builder
	b.WriteString("Figure 1(a): job runtime distribution\n")
	t := &tableWriter{header: []string{"System", "p10", "p50", "p90", "p99", "max"}}
	for _, g := range gs {
		t.addRow(g.System,
			fmtDur(g.RuntimeCDF.Inverse(0.10)), fmtDur(g.RuntimeCDF.Inverse(0.50)),
			fmtDur(g.RuntimeCDF.Inverse(0.90)), fmtDur(g.RuntimeCDF.Inverse(0.99)),
			fmtDur(g.RuntimeSummary.Max))
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 1(b): job arrival intervals and diurnal cycle\n")
	t = &tableWriter{header: []string{"System", "p50 gap", "p90 gap", "max/min hourly"}}
	for _, g := range gs {
		ratio := fmt.Sprintf("%.1fx", g.DiurnalRatio)
		t.addRow(g.System,
			fmtDur(g.IntervalCDF.Inverse(0.50)), fmtDur(g.IntervalCDF.Inverse(0.90)), ratio)
	}
	b.WriteString(t.String())
	for _, g := range gs {
		fmt.Fprintf(&b, "  %-11s hourly: %s\n", g.System, sparkline(g.HourlyArrivals[:]))
	}

	b.WriteString("\nFigure 1(c): requested cores/GPUs\n")
	t = &tableWriter{header: []string{"System", "p50", "p80", "p99", "p50 %machine"}}
	for _, g := range gs {
		t.addRow(g.System,
			fmt.Sprintf("%.0f", g.CoresCDF.Inverse(0.50)),
			fmt.Sprintf("%.0f", g.CoresCDF.Inverse(0.80)),
			fmt.Sprintf("%.0f", g.CoresCDF.Inverse(0.99)),
			fmt.Sprintf("%.3f%%", g.CoresPctCDF.Inverse(0.50)))
	}
	b.WriteString(t.String())
	return b.String()
}

// sparkline renders integer counts as a compact bar string.
func sparkline(counts []int) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(".", len(counts))
	}
	levels := []byte(" .:-=+*#%@")
	out := make([]byte, len(counts))
	for i, c := range counts {
		idx := c * (len(levels) - 1) / max
		out[i] = levels[idx]
	}
	return string(out)
}

// RenderFig2 renders core-hour domination.
func RenderFig2(cs []analysis.CoreHourShares) string {
	t := &tableWriter{header: []string{
		"System", "CH small", "CH middle", "CH large",
		"CH short", "CH mid-len", "CH long", "dominant",
	}}
	for _, c := range cs {
		t.addRow(c.System,
			pct(c.BySize[0]), pct(c.BySize[1]), pct(c.BySize[2]),
			pct(c.ByLength[0]), pct(c.ByLength[1]), pct(c.ByLength[2]),
			c.DominantSize().String()+"/"+c.DominantLength().String())
	}
	return "Figure 2: core-hour share by job size and length class\n" + t.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// RenderFig3to5 renders the scheduling outcome panels.
func RenderFig3to5(ss []analysis.Scheduling) string {
	var b strings.Builder
	b.WriteString("Figure 3: system utilization\n")
	t := &tableWriter{header: []string{"System", "util", "daily min", "daily max"}}
	for _, s := range ss {
		lo, hi := 1.0, 0.0
		for _, d := range s.DailyUtil {
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if len(s.DailyUtil) == 0 {
			lo = 0
		}
		t.addRow(s.System, fmt.Sprintf("%.3f", s.Utilization),
			fmt.Sprintf("%.3f", lo), fmt.Sprintf("%.3f", hi))
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 4: job waiting and turnaround time\n")
	t = &tableWriter{header: []string{"System", "wait p50", "wait p80", "wait p99", "turn p50"}}
	for _, s := range ss {
		t.addRow(s.System,
			fmtDur(s.WaitCDF.Inverse(0.5)), fmtDur(s.WaitCDF.Inverse(0.8)),
			fmtDur(s.WaitCDF.Inverse(0.99)), fmtDur(s.TurnaroundCDF.Inverse(0.5)))
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 5: median wait by size and length class\n")
	t = &tableWriter{header: []string{
		"System", "small", "middle", "large", "short", "mid-len", "long",
	}}
	for _, s := range ss {
		t.addRow(s.System,
			fmtDur(s.WaitBySize[0]), fmtDur(s.WaitBySize[1]), fmtDur(s.WaitBySize[2]),
			fmtDur(s.WaitByLength[0]), fmtDur(s.WaitByLength[1]), fmtDur(s.WaitByLength[2]))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderVCWaste renders the cross-VC stranding analysis.
func RenderVCWaste(ws []analysis.VCWaste) string {
	var b strings.Builder
	b.WriteString("Figure 3 supplement: virtual-cluster stranding (Takeaway 5/6)\n")
	t := &tableWriter{header: []string{
		"System", "VCs", "stranded jobs", "stranded wait", "util min VC", "util max VC",
	}}
	for _, w := range ws {
		lo, hi := 1.0, 0.0
		for _, u := range w.PerVCUtil {
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if len(w.PerVCUtil) == 0 {
			lo = 0
		}
		t.addRow(w.System, fmt.Sprint(w.VCs),
			pct(w.StrandedJobShare), pct(w.StrandedWaitShare),
			fmt.Sprintf("%.3f", lo), fmt.Sprintf("%.3f", hi))
	}
	b.WriteString(t.String())
	b.WriteString("stranded = waiting while another VC had enough idle capacity\n")
	return b.String()
}

// RenderFig6and7 renders the failure panels.
func RenderFig6and7(fs []analysis.Failures) string {
	var b strings.Builder
	b.WriteString("Figure 6: job status by count and core hours\n")
	t := &tableWriter{header: []string{
		"System", "pass#", "fail#", "kill#", "passCH", "failCH", "killCH", "wastedCH",
	}}
	for _, f := range fs {
		t.addRow(f.System,
			pct(f.CountShare[trace.Passed]), pct(f.CountShare[trace.Failed]), pct(f.CountShare[trace.Killed]),
			pct(f.CoreHourShare[trace.Passed]), pct(f.CoreHourShare[trace.Failed]), pct(f.CoreHourShare[trace.Killed]),
			pct(f.WastedCoreHourShare()))
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 7(a): pass rate by size class | 7(b): by length class\n")
	t = &tableWriter{header: []string{
		"System", "small", "middle", "large", "short", "mid-len", "long",
	}}
	for _, f := range fs {
		t.addRow(f.System,
			pct(f.StatusBySize[0][trace.Passed]), pct(f.StatusBySize[1][trace.Passed]), pct(f.StatusBySize[2][trace.Passed]),
			pct(f.StatusByLength[0][trace.Passed]), pct(f.StatusByLength[1][trace.Passed]), pct(f.StatusByLength[2][trace.Passed]))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig8 renders group coverage.
func RenderFig8(gs []analysis.UserGroups) string {
	t := &tableWriter{header: []string{"System", "top-1", "top-3", "top-5", "top-10", "users"}}
	for _, g := range gs {
		get := func(k int) string {
			if k-1 < len(g.Coverage) {
				return pct(g.Coverage[k-1])
			}
			return "n/a"
		}
		t.addRow(g.System, get(1), get(3), get(5), get(10), fmt.Sprint(g.Users))
	}
	return "Figure 8: per-user resource-configuration group coverage\n" + t.String()
}

// RenderFig9and10 renders the queue-pressure behavior panels.
func RenderFig9and10(qs []analysis.QueueBehavior) string {
	var b strings.Builder
	b.WriteString("Figure 9: minimal-request share by queue pressure\n")
	t := &tableWriter{header: []string{"System", "shortQ", "middleQ", "longQ", "maxQ"}}
	for _, q := range qs {
		t.addRow(q.System,
			pct(q.SizeShare[analysis.QueueShort][0]),
			pct(q.SizeShare[analysis.QueueMiddle][0]),
			pct(q.SizeShare[analysis.QueueLong][0]),
			fmt.Sprint(q.MaxQueue))
	}
	b.WriteString(t.String())

	b.WriteString("\nFigure 10: median submitted runtime by queue pressure\n")
	t = &tableWriter{header: []string{"System", "shortQ", "middleQ", "longQ"}}
	for _, q := range qs {
		t.addRow(q.System,
			fmtDur(q.MedianRuntime[analysis.QueueShort]),
			fmtDur(q.MedianRuntime[analysis.QueueMiddle]),
			fmtDur(q.MedianRuntime[analysis.QueueLong]))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderUserAdaptation renders the per-user queue-adaptation supplement.
func RenderUserAdaptation(us []analysis.UserAdaptation) string {
	var b strings.Builder
	b.WriteString("Figures 9-10 supplement: per-user adaptation (heavy users)\n")
	t := &tableWriter{header: []string{
		"System", "users", "size-adapting", "runtime-adapting", "median sizeCorr",
	}}
	for _, u := range us {
		med := make([]float64, 0, len(u.Users))
		for _, p := range u.Users {
			med = append(med, p.SizeCorr)
		}
		t.addRow(u.System, fmt.Sprint(len(u.Users)),
			pct(u.SizeAdaptShare), pct(u.RuntimeAdaptShare),
			fmt.Sprintf("%.2f", stats.Median(med)))
	}
	b.WriteString(t.String())
	b.WriteString("adapting = negative Spearman correlation between observed queue length\nand the user's submitted size/runtime\n")
	return b.String()
}

// RenderFig11 renders per-user runtime-by-status medians.
func RenderFig11(us []analysis.UserStatusRuntimes) string {
	var b strings.Builder
	b.WriteString("Figure 11: per-user runtime by job status (top-3 users)\n")
	t := &tableWriter{header: []string{
		"System", "user", "jobs", "passed p50", "failed p50", "killed p50", "sep(dec)",
	}}
	for _, u := range us {
		for _, p := range u.Users {
			t.addRow(u.System, fmt.Sprintf("U%d", p.User), fmt.Sprint(p.Jobs),
				fmtDur(p.Medians[trace.Passed]), fmtDur(p.Medians[trace.Failed]),
				fmtDur(p.Medians[trace.Killed]), fmt.Sprintf("%.2f", p.StatusSeparation()))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig12 renders the prediction experiment.
func RenderFig12(r *predict.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: runtime prediction on %s (mean runtime %s, %d test jobs)\n",
		r.System, fmtDur(r.MeanRuntime), r.TestJobs)
	t := &tableWriter{header: []string{
		"Model", "elapsed", "underest base", "underest +elapsed", "acc base", "acc +elapsed",
	}}
	for _, mr := range r.Models {
		for _, v := range mr.Variants {
			t.addRow(mr.Model, fmtDur(v.ElapsedSeconds),
				pct(v.Baseline.UnderestimateRate), pct(v.WithElapsed.UnderestimateRate),
				pct(v.Baseline.AvgAccuracy), pct(v.WithElapsed.AvgAccuracy))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderStatusPrediction renders the status-prediction extension (the
// paper's Section V-C sketch made concrete).
func RenderStatusPrediction(r *predict.StatusResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: final-status prediction on %s (%d test jobs)\n", r.System, r.TestJobs)
	t := &tableWriter{header: []string{
		"elapsed", "prior acc", "survival acc", "softmax acc",
		"recallP surv", "recallF surv", "recallK surv",
	}}
	for _, v := range r.Variants {
		t.addRow(fmtDur(v.ElapsedSeconds),
			pct(v.Prior.Accuracy), pct(v.Survival.Accuracy), pct(v.Softmax.Accuracy),
			pct(v.Survival.Recall[trace.Passed]),
			pct(v.Survival.Recall[trace.Failed]),
			pct(v.Survival.Recall[trace.Killed]))
	}
	b.WriteString(t.String())
	b.WriteString("prior = per-user majority status; survival = P(status | runtime > elapsed)\n")
	return b.String()
}

// RenderTableII renders the backfilling comparison.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II: relaxed vs adaptive relaxed backfilling (FCFS base)\n")
	t := &tableWriter{header: []string{
		"Trace", "Metric", "Relaxed", "Adaptive", "Improved",
	}}
	for _, r := range rows {
		t.addRow(r.System, "wait", fmt.Sprintf("%.2f", r.RelaxedWait),
			fmt.Sprintf("%.2f", r.AdaptiveWait), pct(r.WaitImprovement()))
		t.addRow("", "bsld", fmt.Sprintf("%.2f", r.RelaxedBsld),
			fmt.Sprintf("%.2f", r.AdaptiveBsld), pct(r.BsldImprovement()))
		t.addRow("", "util", fmt.Sprintf("%.4f", r.RelaxedUtil),
			fmt.Sprintf("%.4f", r.AdaptiveUtil), pct(r.UtilImprovement()))
		t.addRow("", "violation", fmt.Sprint(r.RelaxedViol),
			fmt.Sprint(r.AdaptiveViol), pct(r.ViolImprovement()))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig1Series prints the raw CDF series behind every Figure 1 panel
// on shared log grids with `points` rows each — suitable for piping into
// an external plotting tool.
func RenderFig1Series(s *Suite, points int) (string, error) {
	gs, err := s.Fig1()
	if err != nil {
		return "", err
	}
	systems := make([]string, len(gs))
	runtimeCDFs := make([]*stats.ECDF, len(gs))
	intervalCDFs := make([]*stats.ECDF, len(gs))
	coresCDFs := make([]*stats.ECDF, len(gs))
	for i, g := range gs {
		systems[i] = g.System
		runtimeCDFs[i] = g.RuntimeCDF
		intervalCDFs[i] = g.IntervalCDF
		coresCDFs[i] = g.CoresCDF
	}
	var b strings.Builder
	b.WriteString(RenderCDFSeries("Figure 1(a): runtime", systems, runtimeCDFs, 1, 1e6, points))
	b.WriteString("\n")
	b.WriteString(RenderCDFSeries("Figure 1(b): arrival interval", systems, intervalCDFs, 0.5, 1e5, points))
	b.WriteString("\n")
	b.WriteString(RenderCDFSeries("Figure 1(c): requested cores", systems, coresCDFs, 1, 1e6, points))
	return b.String(), nil
}

// RenderCDFSeries prints a CDF evaluated on a shared log grid, one row per
// grid point — the raw series behind the paper's CDF plots.
func RenderCDFSeries(label string, systems []string, cdfs []*stats.ECDF, lo, hi float64, points int) string {
	grid := stats.LogGrid(lo, hi, points)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (CDF series)\n", label)
	header := append([]string{"x"}, systems...)
	t := &tableWriter{header: header}
	for _, x := range grid {
		row := []string{fmtDur(x)}
		for _, c := range cdfs {
			row = append(row, fmt.Sprintf("%.3f", c.At(x)))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// FigureNames lists the renderable figure identifiers for the CLI.
var FigureNames = []string{
	"table1", "table1full", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "status", "table2", "all",
}

// Render produces the named figure's text. Figure "12" uses the Fig12System
// argument (default Philly). "all" concatenates everything.
func (s *Suite) Render(name, fig12System string) (string, error) {
	if fig12System == "" {
		fig12System = "Philly"
	}
	switch name {
	case "table1":
		rows, err := s.TableI()
		if err != nil {
			return "", err
		}
		return RenderTableI(rows), nil
	case "table1full":
		rows, err := s.TableIFull()
		if err != nil {
			return "", err
		}
		return RenderTableIFull(rows), nil
	case "1":
		gs, err := s.Fig1()
		if err != nil {
			return "", err
		}
		return RenderFig1(gs) + "\n" + RenderFig1Violins(gs), nil
	case "2":
		cs, err := s.Fig2()
		if err != nil {
			return "", err
		}
		return RenderFig2(cs), nil
	case "3", "4", "5":
		ss, err := s.Fig3to5()
		if err != nil {
			return "", err
		}
		out := RenderFig3to5(ss)
		if ws, err := s.Fig3VCWaste(); err == nil && len(ws) > 0 {
			out += "\n" + RenderVCWaste(ws)
		}
		return out, nil
	case "6", "7":
		fs, err := s.Fig6and7()
		if err != nil {
			return "", err
		}
		return RenderFig6and7(fs), nil
	case "8":
		gs, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return RenderFig8(gs), nil
	case "9", "10":
		qs, err := s.Fig9and10()
		if err != nil {
			return "", err
		}
		out := RenderFig9and10(qs)
		if ua, err := s.Fig9and10PerUser(); err == nil {
			out += "\n" + RenderUserAdaptation(ua)
		}
		return out, nil
	case "11":
		us, err := s.Fig11()
		if err != nil {
			return "", err
		}
		return RenderFig11(us) + "\n" + RenderFig11Violins(us), nil
	case "12":
		r, err := s.Fig12(fig12System)
		if err != nil {
			return "", err
		}
		return RenderFig12(r), nil
	case "status":
		r, err := s.StatusPrediction(fig12System)
		if err != nil {
			return "", err
		}
		return RenderStatusPrediction(r), nil
	case "table2":
		rows, err := s.TableII()
		if err != nil {
			return "", err
		}
		return RenderTableII(rows), nil
	case "all":
		if err := s.Prewarm(); err != nil {
			return "", err
		}
		var parts []string
		for _, n := range []string{"table1", "1", "2", "3", "6", "8", "9", "11", "12", "table2"} {
			p, err := s.Render(n, fig12System)
			if err != nil {
				return "", err
			}
			parts = append(parts, p)
		}
		return strings.Join(parts, "\n"), nil
	}
	valid := append([]string(nil), FigureNames...)
	sort.Strings(valid)
	return "", fmt.Errorf("figures: unknown figure %q (valid: %s)", name, strings.Join(valid, ", "))
}

package figures

import (
	"strings"
	"testing"

	"crosssched/internal/stats"
)

func TestRenderViolinBasics(t *testing.T) {
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 100+float64(i%50))
	}
	v := stats.NewViolin(xs, 100, true)
	out := RenderViolin("test", v, 60)
	if !strings.Contains(out, "test") || !strings.Contains(out, "p50=") {
		t.Fatalf("violin render missing parts: %q", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("violin missing median marker: %q", out)
	}
	// the row between brackets should be exactly `width` wide
	lo := strings.Index(out, "[")
	hi := strings.Index(out, "]")
	if hi-lo-1 != 60 {
		t.Fatalf("violin width %d want 60", hi-lo-1)
	}
}

func TestRenderViolinEmpty(t *testing.T) {
	out := RenderViolin("empty", stats.Violin{}, 60)
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("empty violin render: %q", out)
	}
	out = RenderViolin("narrow", stats.NewViolin([]float64{1, 2, 3}, 50, true), 4)
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("too-narrow violin should degrade: %q", out)
	}
}

func TestRenderFig1ViolinsAllSystems(t *testing.T) {
	gs, err := testSuite.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFig1Violins(gs)
	for _, name := range []string{"BlueWaters", "Mira", "Theta", "Philly", "Helios"} {
		if !strings.Contains(out, name) {
			t.Fatalf("violins missing %s", name)
		}
	}
}

func TestRenderFig11Violins(t *testing.T) {
	us, err := testSuite.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFig11Violins(us)
	for _, want := range []string{"passed", "killed", "U"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 violins missing %q", want)
		}
	}
}

package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"crosssched/internal/figures"
)

func TestBuildAndRender(t *testing.T) {
	s := figures.NewSuite(figures.Config{Days: 6, SimDays: 2, Seed: 21})
	r, err := Build(s, 6, 21, time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Claims) < 10 {
		t.Fatalf("only %d claims checked", len(r.Claims))
	}
	if len(r.Takeaways) != 8 {
		t.Fatalf("takeaways %d want 8", len(r.Takeaways))
	}
	// On calibrated data the vast majority of claims must hold.
	if r.Passed() < len(r.Claims)-2 {
		for _, c := range r.Claims {
			if !c.Holds {
				t.Logf("failing claim: [%s] %s — %s", c.Figure, c.Text, c.Measured)
			}
		}
		t.Fatalf("only %d/%d claims hold", r.Passed(), len(r.Claims))
	}

	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report", "| Fig |", "HOLDS", "## Takeaways", "T8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	s := figures.NewSuite(figures.Config{Days: 2, SimDays: 1, Seed: 5})
	now := time.Unix(0, 0)
	a, err := Build(s, 2, 5, now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s, 2, 5, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Claims) != len(b.Claims) {
		t.Fatal("claim counts differ")
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			t.Fatalf("claim %d differs between runs", i)
		}
	}
}

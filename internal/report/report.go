// Package report generates a markdown reproduction report from live data:
// every paper claim the repository reproduces, the measured value, and a
// pass/fail verdict — the programmatic version of EXPERIMENTS.md, suitable
// for re-running after changing the generators or the simulator.
package report

import (
	"fmt"
	"io"
	"math"
	"time"

	"crosssched/internal/analysis"
	"crosssched/internal/core"
	"crosssched/internal/figures"
	"crosssched/internal/stats"
	"crosssched/internal/trace"
)

// Claim is one paper statement checked against measured data.
type Claim struct {
	Figure   string
	Text     string
	Measured string
	Holds    bool
}

// Report is the full reproduction audit.
type Report struct {
	GeneratedAt time.Time
	Days        float64
	Seed        uint64
	Claims      []Claim
	Takeaways   []core.Takeaway
}

// Passed counts holding claims.
func (r *Report) Passed() int {
	n := 0
	for _, c := range r.Claims {
		if c.Holds {
			n++
		}
	}
	return n
}

// Build evaluates every claim against a suite's data.
func Build(s *figures.Suite, days float64, seed uint64, now time.Time) (*Report, error) {
	r := &Report{GeneratedAt: now, Days: days, Seed: seed}

	byName := map[string]*trace.Trace{}
	var traces []*trace.Trace
	for _, name := range s.Systems() {
		tr, err := s.Trace(name)
		if err != nil {
			return nil, err
		}
		byName[name] = tr
		traces = append(traces, tr)
	}

	med := func(name string, f func(*trace.Trace) []float64) float64 {
		return stats.Median(f(byName[name]))
	}
	runtimes := func(tr *trace.Trace) []float64 { return tr.Runtimes() }
	intervals := func(tr *trace.Trace) []float64 { return tr.ArrivalIntervals() }

	add := func(fig, text, measured string, holds bool) {
		r.Claims = append(r.Claims, Claim{Figure: fig, Text: text, Measured: measured, Holds: holds})
	}

	// --- Figure 1(a): runtimes
	bw, mira := med("BlueWaters", runtimes), med("Mira", runtimes)
	philly, helios := med("Philly", runtimes), med("Helios", runtimes)
	add("1a", "BW/Mira median runtime ~1.5h",
		fmt.Sprintf("BW %.0fs, Mira %.0fs", bw, mira),
		bw > 1800 && bw < 10800 && mira > 2700 && mira < 14400)
	add("1a", "Philly ~12min, Helios ~90s medians",
		fmt.Sprintf("Philly %.0fs, Helios %.0fs", philly, helios),
		philly > 240 && philly < 2400 && helios > 30 && helios < 300)
	spread := func(name string) float64 {
		rt := byName[name].Runtimes()
		return math.Log10(stats.Quantile(rt, 0.99)) - math.Log10(math.Max(1, stats.Quantile(rt, 0.01)))
	}
	add("1a", "DL runtimes more dispersed than HPC",
		fmt.Sprintf("log-spread Philly %.1f vs Mira %.1f decades", spread("Philly"), spread("Mira")),
		spread("Philly") > spread("Mira") && spread("Helios") > spread("Theta"))

	// --- Figure 1(b): arrivals
	bwIv, heliosIv := med("BlueWaters", intervals), med("Helios", intervals)
	miraIv := med("Mira", intervals)
	add("1b", "DL/hybrid arrival gaps seconds-scale; HPC >=10x larger",
		fmt.Sprintf("BW %.1fs, Helios %.1fs vs Mira %.0fs", bwIv, heliosIv, miraIv),
		bwIv < 30 && heliosIv < 30 && miraIv > 8*heliosIv)

	// --- Figure 2: core-hour domination
	shares := func(name string) analysis.CoreHourShares {
		return analysis.AnalyzeCoreHours(byName[name])
	}
	bwS := shares("BlueWaters")
	add("2", "BW small jobs >85% of core hours",
		fmt.Sprintf("%.0f%%", 100*bwS.BySize[analysis.SizeSmall]),
		bwS.BySize[analysis.SizeSmall] > 0.85)
	lenDominance := true
	for _, name := range []string{"BlueWaters", "Mira", "Theta"} {
		if shares(name).DominantLength() != analysis.LengthMiddle {
			lenDominance = false
		}
	}
	for _, name := range []string{"Philly", "Helios"} {
		if shares(name).DominantLength() != analysis.LengthLong {
			lenDominance = false
		}
	}
	add("2", "HPC core hours middle-length dominated; DL long dominated",
		"per-system dominant length classes", lenDominance)

	// --- Figures 3-4: utilization and waits
	sched := func(name string) analysis.Scheduling {
		return analysis.AnalyzeScheduling(byName[name])
	}
	pUtil := sched("Philly").Utilization
	minOther := 1.0
	for _, name := range []string{"BlueWaters", "Mira", "Theta", "Helios"} {
		if u := sched(name).Utilization; u < minOther {
			minOther = u
		}
	}
	add("3", "Philly utilization lowest of the five systems",
		fmt.Sprintf("Philly %.2f vs min elsewhere %.2f", pUtil, minOther),
		pUtil < minOther)
	heliosP80 := sched("Helios").WaitCDF.Inverse(0.8)
	add("4", "Helios: 80% of jobs wait under 10s",
		fmt.Sprintf("p80 = %.1fs", heliosP80), heliosP80 <= 10)
	bwWait := sched("BlueWaters").WaitCDF.Inverse(0.5)
	maxOther := 0.0
	for _, name := range []string{"Mira", "Theta", "Philly", "Helios"} {
		if w := sched(name).WaitCDF.Inverse(0.5); w > maxOther {
			maxOther = w
		}
	}
	add("4", "Blue Waters median wait longest",
		fmt.Sprintf("BW %.0fs vs max elsewhere %.0fs", bwWait, maxOther),
		bwWait >= maxOther)

	// --- Figures 6-7: failures
	failsOK := true
	worstPass := 0.0
	for _, tr := range traces {
		f := analysis.AnalyzeFailures(tr)
		if f.PassRate() > 0.75 {
			failsOK = false
		}
		if f.PassRate() > worstPass {
			worstPass = f.PassRate()
		}
		if f.CoreHourShare[trace.Killed] < f.CountShare[trace.Killed] {
			failsOK = false
		}
	}
	add("6", "Passed <75% everywhere; killed jobs waste outsized core hours",
		fmt.Sprintf("highest pass rate %.0f%%", 100*worstPass), failsOK)

	// --- Figure 8: repeated configurations
	cov := func(name string, k int) float64 {
		g := analysis.AnalyzeUserGroups(byName[name], 10, 20, 50)
		if k-1 < len(g.Coverage) {
			return g.Coverage[k-1]
		}
		return 0
	}
	hpc3 := (cov("Mira", 3) + cov("Theta", 3) + cov("BlueWaters", 3)) / 3
	dl3 := (cov("Philly", 3) + cov("Helios", 3)) / 2
	add("8", "Per-user top-3 group coverage: HPC above DL",
		fmt.Sprintf("HPC %.0f%% vs DL %.0f%%", 100*hpc3, 100*dl3), hpc3 > dl3)

	// --- Figures 9-10: queue adaptation
	qb := func(name string) analysis.QueueBehavior {
		return analysis.AnalyzeQueueBehavior(byName[name])
	}
	adaptOK := 0
	for _, name := range []string{"BlueWaters", "Philly", "Helios"} {
		b := qb(name)
		if b.SizeShare[analysis.QueueLong][0] > b.SizeShare[analysis.QueueShort][0] {
			adaptOK++
		}
	}
	add("9", "Minimal-request share grows with queue pressure",
		fmt.Sprintf("%d of 3 high-pressure systems", adaptOK), adaptOK >= 2)
	runtimeAdaptOK := true
	for _, name := range []string{"Philly", "Helios"} {
		b := qb(name)
		if b.MedianRuntime[analysis.QueueLong] >= b.MedianRuntime[analysis.QueueShort] {
			runtimeAdaptOK = false
		}
	}
	add("10", "DL users submit shorter jobs under load",
		"Philly/Helios long-queue medians below short-queue", runtimeAdaptOK)

	// --- Takeaways
	var reports []*core.Report
	for _, tr := range traces {
		reports = append(reports, core.Characterize(tr))
	}
	r.Takeaways = core.EvaluateTakeaways(reports)
	return r, nil
}

// WriteMarkdown renders the report.
func (r *Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Reproduction report\n\nGenerated %s | %.0f-day traces | seed %d | %d/%d claims hold\n\n",
		r.GeneratedAt.Format("2006-01-02 15:04"), r.Days, r.Seed, r.Passed(), len(r.Claims)); err != nil {
		return err
	}
	fmt.Fprintf(w, "| Fig | Paper claim | Measured | Verdict |\n|---|---|---|---|\n")
	for _, c := range r.Claims {
		verdict := "HOLDS"
		if !c.Holds {
			verdict = "**FAILS**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.Figure, c.Text, c.Measured, verdict)
	}
	fmt.Fprintf(w, "\n## Takeaways\n\n")
	for _, tw := range r.Takeaways {
		verdict := "HOLDS"
		if !tw.Holds {
			verdict = "**FAILS**"
		}
		fmt.Fprintf(w, "- T%d %s — %s (%s)\n", tw.ID, tw.Title, tw.Evidence, verdict)
	}
	return nil
}

// Package crosssched reproduces "Cross-System Analysis of Job
// Characterization and Scheduling in Large-Scale Computing Clusters"
// (IPPS 2024) as a self-contained Go library: calibrated workload
// generators for five production systems, a discrete-event scheduling
// simulator, a from-scratch ML stack for runtime and status prediction,
// and the full characterization methodology behind the paper's tables,
// figures, and eight takeaways.
//
// The root package holds only the benchmark harness (bench_test.go),
// which regenerates every table and figure under `go test -bench=.`.
// Start with internal/core for the public API, cmd/lumos for the figure
// CLI, and DESIGN.md / EXPERIMENTS.md for the reproduction inventory and
// paper-vs-measured results.
package crosssched

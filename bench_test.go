// Package crosssched's root benchmarks regenerate every table and figure
// in the paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark measures the full regeneration of one experiment — workload
// generation is cached per suite, so iterations measure the analysis or
// simulation itself. Run all of them with:
//
//	go test -bench=. -benchmem
//
// and print the figure data itself with cmd/lumos.
package crosssched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"crosssched/internal/check"
	"crosssched/internal/dist"
	"crosssched/internal/experiments"
	"crosssched/internal/fault"
	"crosssched/internal/figures"
	"crosssched/internal/obs"
	"crosssched/internal/predict"
	"crosssched/internal/rl"
	"crosssched/internal/sim"
	"crosssched/internal/synth"
	"crosssched/internal/trace"
)

// benchSuite is shared across benchmarks so traces generate once.
var (
	benchSuiteOnce sync.Once
	benchSuite     *figures.Suite
)

func suite(b *testing.B) *figures.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuite = figures.NewSuite(figures.Config{Days: 5, SimDays: 4, Seed: 1})
	})
	return benchSuite
}

// prime generates all characterization traces outside the timed region
// (concurrently; generators are independent).
func prime(b *testing.B, s *figures.Suite) {
	b.Helper()
	if err := s.Prewarm(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TableI(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Geometries(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2CoreHours(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3to5Scheduling(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3to5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6and7Failures(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6and7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8UserGroups(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9and10QueueBehavior(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9and10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11UserStatus(b *testing.B) {
	s := suite(b)
	prime(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Prediction measures the full five-model prediction
// experiment on a compact Philly-like trace (the paper's Figure 12).
func BenchmarkFig12Prediction(b *testing.B) {
	p := synth.Philly(2)
	tr, err := p.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predict.Run(tr, predict.Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIAdaptiveBackfill measures the relaxed-vs-adaptive
// comparison across the three walltime-bearing systems.
func BenchmarkTableIIAdaptiveBackfill(b *testing.B) {
	s := suite(b)
	for _, name := range figures.TableIISystems {
		if _, err := s.SimTrace(name); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks: the substrates the experiments are built on.

func benchTrace(b *testing.B, name string, days float64) *trace.Trace {
	b.Helper()
	p, err := synth.ByName(name, days)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := p.Generate(7)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkGenerateHelios measures raw trace generation throughput.
func BenchmarkGenerateHelios(b *testing.B) {
	p := synth.Helios(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEASY measures the scheduling simulator on a congested
// Theta-like workload with EASY backfilling.
func BenchmarkSimulatorEASY(b *testing.B) {
	tr := benchTrace(b, "Theta", 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorConservative measures the heavier conservative
// backfilling planner. This is the benchmark the incremental reservation
// plan's >= 4x acceptance bar is measured on (BENCH_pr6.json vs the
// from-scratch BENCH_pr4.json).
func BenchmarkSimulatorConservative(b *testing.B) {
	tr := benchTrace(b, "Theta", 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, sim.Options{Policy: sim.FCFS, Backfill: sim.Conservative}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorConservativeFaults measures conservative backfilling
// with fault injection enabled: capacity drains and interrupts disable plan
// persistence, so this pins the from-scratch fallback path (and documents
// what fault runs cost relative to the incremental fast path above).
func BenchmarkSimulatorConservativeFaults(b *testing.B) {
	tr := benchTrace(b, "Theta", 8)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.Conservative,
		Faults: &fault.Config{
			Seed: 13, MTBF: 20000, MTTR: 4000, OutageFrac: 0.25, InterruptProb: 0.02,
			Recovery: fault.RecoveryRequeue, RetryCap: 3,
		}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design-choice studies beyond the paper's
// headline tables; see internal/experiments).

// BenchmarkAblationPolicyMatrix measures the policy x backfilling grid.
func BenchmarkAblationPolicyMatrix(b *testing.B) {
	tr := benchTrace(b, "Theta", 4)
	pols := []sim.Policy{sim.FCFS, sim.SJF, sim.Fair}
	bfs := []sim.BackfillKind{sim.NoBackfill, sim.EASY}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolicyMatrix(tr, pols, bfs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelaxSweep measures the relaxation-factor sweep.
func BenchmarkAblationRelaxSweep(b *testing.B) {
	tr := benchTrace(b, "Theta", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RelaxFactorSweep(tr, []float64{0.05, 0.1, 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPredictionBackfill measures the Tsafrir-style
// estimate-source comparison.
func BenchmarkAblationPredictionBackfill(b *testing.B) {
	tr := benchTrace(b, "Theta", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PredictionBackfill(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3VCWaste measures the cross-VC stranding analysis on the
// partitioned Philly workload.
func BenchmarkFig3VCWaste(b *testing.B) {
	s := suite(b)
	if _, err := s.Trace("Philly"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3VCWaste(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatusPrediction measures the final-status prediction extension
// (the paper's Section V-C observation made concrete).
func BenchmarkStatusPrediction(b *testing.B) {
	p := synth.Philly(2)
	tr, err := p.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predict.RunStatus(tr, predict.StatusConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridSweep measures the DL-injection stress test (the paper's
// motivating hybrid-workload scenario).
func BenchmarkHybridSweep(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HybridSweep(2, 1, []float64{0, 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch-execution benchmarks: the many-run sweep workloads whose
// throughput the pooled sim.Runner and the internal/par worker pool exist
// for. These are the headline numbers for batch throughput; BENCH_pr4.json
// records them against the reallocating BENCH_baseline.json.

// BenchmarkRelaxFactorSweep measures the relaxation-factor sweep at the
// paper's six-point grid: 12 full simulations per iteration (relaxed +
// adaptive per factor) over a shared congested trace. This is the
// benchmark the ISSUE's >= 2x ns/op and >= 5x allocs/op acceptance
// criteria are measured on.
func BenchmarkRelaxFactorSweep(b *testing.B) {
	tr := benchTrace(b, "Theta", 4)
	factors := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RelaxFactorSweep(tr, factors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRLFitness measures one ES generation's fitness evaluation: 16
// candidate policies (the default population's antithetic pairs), each a
// full simulation of the shared trace, fanned out on the worker pool.
func BenchmarkRLFitness(b *testing.B) {
	tr := benchTrace(b, "Theta", 2)
	rng := dist.NewRNG(3)
	pop := make([]rl.LinearPolicy, 16)
	for i := range pop {
		for j := range pop[i].W {
			pop[i].W[j] = rng.Normal()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rl.EvaluatePopulation(context.Background(), pop, tr, sim.EASY); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming-pipeline benchmarks: the out-of-core path (sim.RunStream
// over a trace.Stream; see DESIGN.md's "Streaming pipeline" section). These
// report jobs/s, and the end-to-end pipelines also report the peak heap
// during the run — the number the O(window) memory claim is about.

// BenchmarkStreamSimulatorEASY replays the same congested Theta workload as
// BenchmarkSimulatorEASY through the windowed streaming intake, pinning the
// streaming path's overhead relative to the materialized hot path (results
// are float-for-float identical; only the intake differs).
func BenchmarkStreamSimulatorEASY(b *testing.B) {
	tr := benchTrace(b, "Theta", 8)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}
	sink := func(sim.StreamRow) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunStream(trace.NewSliceStream(tr), opt, sink); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// streamPipeline measures the full out-of-core pipeline — synthetic
// generator streaming into the windowed simulator, rows discarded at the
// sink — on a Helios-like workload (~6.8k jobs/day). A sampler goroutine
// records the peak live heap; on long traces it stays bounded by the
// sliding window (active jobs plus arrivals overlapping the
// longest-running job), not the trace length.
func streamPipeline(b *testing.B, days float64) {
	b.Helper()
	p := synth.Helios(days)
	var jobs int64
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				select {
				case <-stop:
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
		src, err := p.Stream(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		var met obs.Metrics
		opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, Metrics: &met}
		if _, err := sim.RunStream(src, opt, func(sim.StreamRow) error { return nil }); err != nil {
			b.Fatal(err)
		}
		jobs += met.JobsRetired
		close(stop)
		wg.Wait()
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

// BenchmarkStreamPipelineHelios is the CI-scale pipeline benchmark
// (~200k jobs end to end per iteration).
func BenchmarkStreamPipelineHelios(b *testing.B) { streamPipeline(b, 30) }

// BenchmarkStreamSimulator10M generates and schedules ~10 million jobs per
// iteration (~60s); select it explicitly (scripts/bench.sh
// BenchmarkStreamSimulator10M 1) rather than in the smoke pattern. The
// peak-heap-MB metric demonstrating the O(window) bound is recorded in
// BENCH_pr7.json.
func BenchmarkStreamSimulator10M(b *testing.B) { streamPipeline(b, 1465) }

// --- Sharded-execution benchmarks: the partition-sharded parallel path
// (internal/sim/shard.go). Philly's 14 isolated virtual clusters are the
// motivating shape: partitions never interact under partition-local
// policies, so the trace splits into independent shards stitched back
// deterministically. The shards=1 sub-benchmark is the single-shard
// reference the >= 2x jobs/s acceptance bar at shards=4 is measured
// against (BENCH_pr9.json).

// BenchmarkShardedSimulator measures the materialized sharded path on a
// congested Philly-like workload (~40k jobs across 14 VCs per iteration).
func BenchmarkShardedSimulator(b *testing.B) {
	tr := benchTrace(b, "Philly", 8)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var met obs.Metrics
			opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, Shards: shards, Metrics: &met}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(tr, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if shards > 1 && met.ShardFallbackReason != "" {
				b.Fatalf("sharded run fell back: %s", met.ShardFallbackReason)
			}
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// streamShardedPipeline is streamPipeline on the partitioned Philly
// generator with a forced shard count: generator -> watermarked per-shard
// readers -> pooled shard simulators -> deterministic stitch, rows
// discarded at the sink. Peak heap stays O(shards x window).
func streamShardedPipeline(b *testing.B, days float64, shards int) {
	b.Helper()
	p := synth.Philly(days)
	var jobs int64
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				select {
				case <-stop:
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
		src, err := p.Stream(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		var met obs.Metrics
		opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY, Shards: shards, Metrics: &met}
		if _, err := sim.RunStream(src, opt, func(sim.StreamRow) error { return nil }); err != nil {
			b.Fatal(err)
		}
		if shards > 1 && met.ShardFallbackReason != "" {
			b.Fatalf("sharded stream fell back: %s", met.ShardFallbackReason)
		}
		jobs += met.JobsRetired
		close(stop)
		wg.Wait()
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

// BenchmarkStreamShardedPhilly is the CI-scale sharded pipeline benchmark
// (~150k jobs end to end per iteration).
func BenchmarkStreamShardedPhilly(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			streamShardedPipeline(b, 30, shards)
		})
	}
}

// BenchmarkStreamSharded10M generates and schedules ~10 million jobs per
// iteration through the sharded streaming path; select it explicitly
// (scripts/bench.sh BenchmarkStreamSharded10M 1) rather than in the smoke
// pattern. BENCH_pr9.json records shards=1 vs shards=4.
func BenchmarkStreamSharded10M(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			streamShardedPipeline(b, 2000, shards)
		})
	}
}

// --- Verification benchmarks: the differential-testing substrate
// (internal/check) has to stay fast enough to run in every test cycle.

func verifyBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := synth.VerifyHPC(0.5).Generate(7)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkOracleSimulator measures the O(n²) reference oracle on a
// verification-scale workload; it bounds how big differential sweeps can be.
func BenchmarkOracleSimulator(b *testing.B) {
	tr := verifyBenchTrace(b)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.EASY}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := check.Oracle(tr, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleAuditor measures the invariant auditor over a finished
// run (the cost of `schedsim -audit` beyond the simulation itself).
func BenchmarkScheduleAuditor(b *testing.B) {
	tr := verifyBenchTrace(b)
	opt := sim.Options{Policy: sim.FCFS, Backfill: sim.Relaxed, RelaxFactor: 0.1}
	res, err := sim.Run(tr, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := check.Audit(tr, opt, res); !rep.OK() {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkLearnedSchedulerTraining measures one ES training run of the
// learned linear scheduling policy (internal/rl).
func BenchmarkLearnedSchedulerTraining(b *testing.B) {
	tr := benchTrace(b, "Theta", 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rl.Train(tr, rl.TrainConfig{
			Iterations: 5, Population: 4, Seed: 1, Backfill: sim.EASY,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

#!/bin/sh
# bench.sh — run the simulator benchmarks and emit a machine-readable JSON
# summary, suitable for committing as a baseline (BENCH_baseline.json) or
# diffing against one in CI.
#
# Usage:
#   scripts/bench.sh [pattern] [count] [out.json]
#
#   pattern   go test -bench regexp   (default: BenchmarkSimulator)
#   count     repetitions per bench   (default: 3)
#   out.json  JSON output path        (default: stdout; raw go test output
#                                      always goes to stderr so benchstat
#                                      users can tee it)
#
# The JSON groups runs by benchmark name and reports the per-run series plus
# the minimum ns/op (the least-noise statistic) and the B/op and allocs/op,
# which are deterministic per run:
#
#   {"benchmarks": [{"name": ..., "runs": N,
#                    "ns_per_op": [...], "min_ns_per_op": ...,
#                    "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
#
# For statistically rigorous before/after comparisons prefer benchstat on the
# raw output (see the Performance section in DESIGN.md).
set -eu

pattern=${1:-BenchmarkSimulator}
count=${2:-3}
out=${3:-}

cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench "$pattern" -benchmem -count "$count" . )
printf '%s\n' "$raw" >&2

json=$(printf '%s\n' "$raw" | awk '
  /^Benchmark/ {
    # BenchmarkName-P  iters  X ns/op  Y B/op  Z allocs/op
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = ns[name] sep[name] $3
    sep[name] = ", "
    if (!(name in order)) { order[name] = ++n; names[n] = name }
    min_ns[name] = (min_ns[name] == "" || $3 + 0 < min_ns[name] + 0) ? $3 : min_ns[name]
    bytes[name] = $5
    allocs[name] = $7
  }
  END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
      name = names[i]
      printf "    {\"name\": \"%s\", \"runs\": %d,\n", name, split(ns[name], _, ", ")
      printf "     \"ns_per_op\": [%s],\n", ns[name]
      printf "     \"min_ns_per_op\": %s,\n", min_ns[name]
      printf "     \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", bytes[name], allocs[name], (i < n) ? "," : ""
    }
    printf "  ]\n}\n"
  }')

if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
    echo "wrote $out" >&2
else
    printf '%s\n' "$json"
fi

#!/bin/sh
# bench.sh — run the simulator benchmarks and emit a machine-readable JSON
# summary, suitable for committing as a baseline (BENCH_baseline.json) or
# diffing against one in CI.
#
# Usage:
#   scripts/bench.sh [pattern] [count] [out.json]
#
#   pattern   go test -bench regexp   (default: BenchmarkSimulator)
#   count     repetitions per bench   (default: 3)
#   out.json  JSON output path        (default: stdout; raw go test output
#                                      always goes to stderr so benchstat
#                                      users can tee it)
#
# The JSON groups runs by benchmark name and reports the per-run series plus
# the minimum ns/op (the least-noise statistic) and the B/op and allocs/op,
# which are deterministic per run. Custom b.ReportMetric columns (the
# streaming benchmarks emit jobs/s and peak-heap-MB) are carried through as
# per-run series keyed by their unit:
#
#   {"benchmarks": [{"name": ..., "runs": N,
#                    "ns_per_op": [...], "min_ns_per_op": ...,
#                    "jobs/s": [...],                      # custom metrics, if any
#                    "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
#
# For statistically rigorous before/after comparisons prefer benchstat on the
# raw output (see the Performance section in DESIGN.md).
set -eu

pattern=${1:-BenchmarkSimulator}
count=${2:-3}
out=${3:-}

cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench "$pattern" -benchmem -count "$count" . )
printf '%s\n' "$raw" >&2

json=$(printf '%s\n' "$raw" | awk '
  /^Benchmark/ {
    # BenchmarkName-P  iters  X ns/op  [V unit]...  Y B/op  Z allocs/op
    # Columns come in value/unit pairs; custom b.ReportMetric units land
    # between ns/op and B/op, so parse by unit instead of position.
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in order)) { order[name] = ++n; names[n] = name }
    for (f = 3; f < NF; f += 2) {
      v = $f
      u = $(f + 1)
      if (u == "ns/op") {
        ns[name] = ns[name] sep[name] v
        sep[name] = ", "
        min_ns[name] = (min_ns[name] == "" || v + 0 < min_ns[name] + 0) ? v : min_ns[name]
      } else if (u == "B/op") {
        bytes[name] = v
      } else if (u == "allocs/op") {
        allocs[name] = v
      } else {
        key = name SUBSEP u
        if (!(key in xsep)) {
          units[name] = units[name] usep[name] u
          usep[name] = "\t"
        }
        extra[key] = extra[key] xsep[key] v
        xsep[key] = ", "
      }
    }
  }
  END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
      name = names[i]
      printf "    {\"name\": \"%s\", \"runs\": %d,\n", name, split(ns[name], _, ", ")
      printf "     \"ns_per_op\": [%s],\n", ns[name]
      printf "     \"min_ns_per_op\": %s,\n", min_ns[name]
      m = split(units[name], us, "\t")
      for (j = 1; j <= m; j++)
        printf "     \"%s\": [%s],\n", us[j], extra[name SUBSEP us[j]]
      printf "     \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", bytes[name], allocs[name], (i < n) ? "," : ""
    }
    printf "  ]\n}\n"
  }')

if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
    echo "wrote $out" >&2
else
    printf '%s\n' "$json"
fi

#!/bin/sh
# crashtest.sh — kill -9 the twin service mid-load and prove nothing
# acknowledged was lost: boot lumosweb with a state dir and fsync=always,
# drive K journaled sessions, capture each session's published event log,
# SIGKILL the server in the middle of a second load wave, restart it over
# the same state dir, and assert
#
#   1. the restarted server reports every session recovered,
#   2. each session's event log starts with the exact pre-kill bytes
#      (the journal-replay determinism pin), and
#   3. the recovered sessions keep accepting work.
#
# Usage:
#   scripts/crashtest.sh [sessions] [submits] [workers]
#
#   sessions  concurrent twin sessions  (default: 20)
#   submits   submission batches each   (default: 2)
#   workers   concurrent client workers (default: 8)
#
# Environment:
#   RACE=-race   build server and client under the race detector (CI smoke)
set -eu

SESSIONS="${1:-20}"
SUBMITS="${2:-2}"
WORKERS="${3:-8}"
RACE="${RACE:-}"

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
STATE="$TMP/state"
SERVER=""
trap '[ -n "$SERVER" ] && kill -KILL "$SERVER" 2>/dev/null; rm -rf "$TMP"' EXIT

echo "crashtest: building lumosweb + twinload ${RACE:+(race)}" >&2
# shellcheck disable=SC2086
go build $RACE -o "$TMP/lumosweb" ./cmd/lumosweb
# shellcheck disable=SC2086
go build $RACE -o "$TMP/twinload" ./cmd/twinload

# boot <logfile> starts the server on the shared state dir and waits for
# its address; sets SERVER and ADDR.
boot() {
    "$TMP/lumosweb" -addr 127.0.0.1:0 -days 1 -simdays 1 \
        -state-dir "$STATE" -fsync always >"$1" 2>&1 &
    SERVER=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^lumosweb: serving on //p' "$1")"
        [ -n "$ADDR" ] && break
        kill -0 "$SERVER" 2>/dev/null || { echo "crashtest: server died at startup:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "crashtest: server never reported its address" >&2; exit 1; }
    echo "crashtest: server up at $ADDR (pid $SERVER)" >&2
}

# Phase 1: populate K durable sessions, then snapshot every event log.
boot "$TMP/server1.log"
"$TMP/twinload" -url "http://$ADDR" -sessions "$SESSIONS" -submits "$SUBMITS" -workers "$WORKERS"
mkdir -p "$TMP/pre"
i=1
while [ "$i" -le "$SESSIONS" ]; do
    ID="$(printf 's%06d' "$i")"
    curl -sf "http://$ADDR/session/$ID/log" >"$TMP/pre/$ID" \
        || { echo "crashtest: could not capture $ID's log" >&2; exit 1; }
    i=$((i + 1))
done

# Phase 2: resume load on those sessions and SIGKILL the server mid-wave.
# The load driver tolerates failures after the kill fires (that's the
# point); what it must NOT see is an error before it.
echo "crashtest: resuming load, killing server pid $SERVER mid-wave" >&2
"$TMP/twinload" -url "http://$ADDR" -sessions "$SESSIONS" -submits "$SUBMITS" -workers "$WORKERS" \
    -resume -kill-pid "$SERVER" -kill-after 20ms
wait "$SERVER" 2>/dev/null || true
SERVER=""
echo "crashtest: server killed; restarting over $STATE" >&2

# Phase 3: restart and verify recovery.
boot "$TMP/server2.log"
STATUS=0

RECOVERED="$(curl -sf "http://$ADDR/twin/metrics" | grep -o '"twin_recovered":[0-9]*' | cut -d: -f2)"
if [ "${RECOVERED:-0}" -lt "$SESSIONS" ]; then
    echo "crashtest: FAIL: recovered ${RECOVERED:-0}/$SESSIONS sessions" >&2
    STATUS=1
else
    echo "crashtest: recovered $RECOVERED sessions" >&2
fi

# The recovery pin: each session's post-restart log must reproduce its
# pre-kill log byte-for-byte as a prefix (the resumed wave may have
# appended more events before the kill — never changed or lost any).
i=1
while [ "$i" -le "$SESSIONS" ]; do
    ID="$(printf 's%06d' "$i")"
    if ! curl -sf "http://$ADDR/session/$ID/log" >"$TMP/post"; then
        echo "crashtest: FAIL: $ID unreachable after restart" >&2
        STATUS=1
    elif ! head -c "$(wc -c <"$TMP/pre/$ID")" "$TMP/post" | cmp -s - "$TMP/pre/$ID"; then
        echo "crashtest: FAIL: $ID event prefix diverged across the crash" >&2
        STATUS=1
    fi
    i=$((i + 1))
done
[ "$STATUS" -eq 0 ] && echo "crashtest: all $SESSIONS event prefixes reproduced byte-for-byte" >&2

# Recovered sessions still serve: one more full wave against them.
"$TMP/twinload" -url "http://$ADDR" -sessions "$SESSIONS" -submits 1 -workers "$WORKERS" -resume || STATUS=1

echo "crashtest: sending SIGTERM, expecting a graceful drain" >&2
kill -TERM "$SERVER"
for _ in $(seq 1 300); do
    kill -0 "$SERVER" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER" 2>/dev/null; then
    echo "crashtest: server did not exit within 30s of SIGTERM" >&2
    kill -KILL "$SERVER" 2>/dev/null || true
    STATUS=1
fi
wait "$SERVER" 2>/dev/null || true
SERVER=""
if ! grep -q 'shut down cleanly' "$TMP/server2.log"; then
    echo "crashtest: restarted server missing clean-shutdown line:" >&2
    tail -20 "$TMP/server2.log" >&2
    STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
    echo "crashtest: PASS ($SESSIONS sessions survived kill -9 with identical event prefixes)" >&2
else
    echo "crashtest: FAIL (status $STATUS)" >&2
fi
exit "$STATUS"

#!/bin/sh
# loadtest.sh — boot lumosweb, drive K twin sessions x M submission batches
# through it with cmd/twinload, and assert the server survives the load and
# drains cleanly on SIGTERM.
#
# Usage:
#   scripts/loadtest.sh [sessions] [submits] [workers]
#
#   sessions  concurrent twin sessions  (default: 1000)
#   submits   submission batches each   (default: 3)
#   workers   concurrent client workers (default: 64)
#
# Environment:
#   RACE=-race       build server and client under the race detector (CI smoke)
#   TWINLOAD_FLAGS   extra flags passed to twinload verbatim, e.g.
#                    "-jobs 40 -cold-whatif" for the warm-vs-cold what-if A/B
#   SERVER_FLAGS     extra flags passed to lumosweb verbatim, e.g.
#                    "-state-dir /tmp/twins -fsync always" for durability A/Bs
#
# The script reports sessions/sec and what-if latency percentiles (from
# twinload) plus the server's peak RSS, and exits nonzero if any session
# fails, the server crashes, or shutdown does not end with the server's
# "shut down cleanly" line.
set -eu

SESSIONS="${1:-1000}"
SUBMITS="${2:-3}"
WORKERS="${3:-64}"
RACE="${RACE:-}"

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "loadtest: building lumosweb + twinload ${RACE:+(race)}" >&2
# shellcheck disable=SC2086
go build $RACE -o "$TMP/lumosweb" ./cmd/lumosweb
# shellcheck disable=SC2086
go build $RACE -o "$TMP/twinload" ./cmd/twinload

# Tiny figure workload: this test is about the twin service, not renders.
# shellcheck disable=SC2086
"$TMP/lumosweb" -addr 127.0.0.1:0 -days 1 -simdays 1 ${SERVER_FLAGS:-} >"$TMP/server.log" 2>&1 &
SERVER=$!

# The server prints "lumosweb: serving on 127.0.0.1:PORT" once the listener
# is up; poll for it rather than racing a fixed sleep.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^lumosweb: serving on //p' "$TMP/server.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER" 2>/dev/null || { echo "loadtest: server died at startup:" >&2; cat "$TMP/server.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "loadtest: server never reported its address" >&2; exit 1; }
echo "loadtest: server up at $ADDR (pid $SERVER)" >&2

STATUS=0
# shellcheck disable=SC2086
"$TMP/twinload" -url "http://$ADDR" -sessions "$SESSIONS" -submits "$SUBMITS" -workers "$WORKERS" ${TWINLOAD_FLAGS:-} || STATUS=$?

# Peak RSS: the acceptance bar is "bounded", so surface the number.
if [ -r "/proc/$SERVER/status" ]; then
    awk '/VmHWM|VmRSS/ {print "loadtest: server " $1 " " $2 " " $3}' "/proc/$SERVER/status" >&2
fi

echo "loadtest: sending SIGTERM, expecting a graceful drain" >&2
kill -TERM "$SERVER"
DRAINED=1
for _ in $(seq 1 300); do
    if ! kill -0 "$SERVER" 2>/dev/null; then DRAINED=0; break; fi
    sleep 0.1
done
if [ "$DRAINED" -ne 0 ]; then
    echo "loadtest: server did not exit within 30s of SIGTERM" >&2
    kill -KILL "$SERVER" 2>/dev/null || true
    STATUS=1
fi
wait "$SERVER" 2>/dev/null || true

if ! grep -q 'shut down cleanly' "$TMP/server.log"; then
    echo "loadtest: server log missing clean-shutdown line:" >&2
    tail -20 "$TMP/server.log" >&2
    STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
    echo "loadtest: PASS ($SESSIONS sessions x $SUBMITS submits, clean SIGTERM drain)" >&2
else
    echo "loadtest: FAIL (status $STATUS)" >&2
fi
exit "$STATUS"

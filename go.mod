module crosssched

go 1.22
